(** Control plane for the compile-time caches.

    PR "compile-time performance" introduces several memoization layers
    (hash-consed {!Fir.Expr} nodes, memoized [Poly.of_expr] /
    [Symbolic.Compare] orderings / [Range_prop] environments, and
    [Dep.Driver] verdict caching).  They all answer to this module:

    - {!enabled} is the master switch.  [POLARIS_NO_CACHE=1] in the
      environment turns every cache off (the baseline the `perf`
      benchmark compares against); [Core.Config.caches] scopes the
      switch per compilation.
    - {!generation} is the coarse invalidation epoch.  [Core.Pipeline]
      still bumps it after every guarded pass and on every fault
      rollback, but since the analysis-manager PR no cache keys on it:
      physically-keyed analyses revalidate per entry
      ({!Analysis.Manager}'s unit-version and block-identity probes)
      and the semantic caches are content-addressed.  The epoch remains
      as telemetry and as the seam a future coarse-grained cache could
      hook into.
    - {!debug} ([POLARIS_CACHE_DEBUG=1]) makes every cache hit
      cross-check against a fresh computation and raise
      {!Debug_mismatch} on divergence; this is the belt-and-braces mode
      used while developing new caches (note it recomputes, so budget
      accounting is no longer identical to the uncached compiler).
    - {!register} gives each cache a hit/miss counter and a clear hook;
      [Valid.Trace] reports the counters and the benchmarks reset the
      tables between modes via {!clear_all}.

    Soundness contract: a cache may only consult its table when
    [!enabled] is true, must guarantee a stale entry can never hit when
    the cached fact depends on mutable IR (a per-entry validity probe
    as in {!Analysis.Manager}, or a content-addressed key), and — when
    the computation
    spends from a {!Budget} — must record the step cost and replay it on
    hits ([Budget.afford] + [Budget.spend]) so cached and uncached runs
    make byte-identical budget decisions. *)

(* hit/miss counters are atomics: during a parallel phase ({!Pool})
   every worker domain bumps them concurrently.  They are telemetry,
   not semantics — the cached values themselves are never shared
   mid-phase (per-slot shards, see {!merge_shards}). *)
type stats = {
  cs_name : string;
  cs_hits : int Atomic.t;
  cs_misses : int Atomic.t;
}

exception Debug_mismatch of string
(** Raised in {!debug} mode when a cache hit disagrees with a fresh
    computation; the payload names the offending cache. *)

(* environment knobs are parsed and validated in {!Env}, the single
   parse site for POLARIS_* variables *)
let default_enabled = not Env.no_cache
let enabled = ref default_enabled
let debug = ref Env.cache_debug

let generation = ref 0
let bump_generation () = incr generation

(* ------------------------------------------------------------------ *)
(* Backing store (the compile daemon's persistent analysis store)      *)

(** A second-level store behind the content-addressed caches.  Keys and
    values are opaque byte strings (the cache layer marshals them); the
    [name] namespaces entries per cache.  Installed by
    [Serve.Store.install] when a daemon runs with [POLARIS_CACHE_DIR];
    absent in ordinary one-shot compiles.  Implementations must be
    domain-safe: during a parallel phase worker domains look up and
    insert concurrently. *)
type backing = {
  bk_lookup : name:string -> key:string -> string option;
  bk_insert : name:string -> key:string -> data:string -> unit;
}

let backing : backing option ref = ref None

(** Install (or with [None] remove) the process-wide backing store. *)
let set_backing b = backing := b

type entry = {
  e_stats : stats;
  e_clear : unit -> unit;
  e_merge : (unit -> unit) option;
  e_persist : bool;
}

let registry : entry list ref = ref []

(** [register ~name ~clear] enrolls a cache: returns its counters and
    remembers [clear] for {!clear_all}.  [merge], if given, folds the
    cache's per-slot shard tables into its shared store; the domain
    pool calls {!merge_shards} at the end of every parallel phase
    (caches with no sharding — e.g. the single-writer expression
    intern pool — pass none).  [persist] declares the cache's entries
    content-addressed pure data, safe to spill to the {!backing}
    store and reload in a later process. *)
let register ~name ?merge ?(persist = false) ~clear () =
  let s =
    { cs_name = name; cs_hits = Atomic.make 0; cs_misses = Atomic.make 0 }
  in
  registry :=
    !registry @ [ { e_stats = s; e_clear = clear; e_merge = merge;
                    e_persist = persist } ];
  s

(** Names of the caches registered with [~persist:true] — the set the
    daemon's persistent store shares across sessions and processes. *)
let persistent_names () =
  List.filter_map
    (fun e -> if e.e_persist then Some e.e_stats.cs_name else None)
    !registry

let hit s = Atomic.incr s.cs_hits
let miss s = Atomic.incr s.cs_misses

(** Fold every cache's per-slot shards into its shared store.  Only
    sound at a sequential point (no task running); {!Util.Pool.map}
    calls it after each batch, on the submitting domain. *)
let merge_shards () =
  List.iter (fun e -> Option.iter (fun f -> f ()) e.e_merge) !registry

(** Current counters of every registered cache, as
    [(name, hits, misses)]. *)
let snapshot () =
  List.map
    (fun e ->
      (e.e_stats.cs_name, Atomic.get e.e_stats.cs_hits,
       Atomic.get e.e_stats.cs_misses))
    !registry

(** [delta ~base now]: per-cache counter growth since [base] (caches
    registered after [base] count from zero). *)
let delta ~base now =
  List.map
    (fun (name, h, m) ->
      match List.find_opt (fun (n, _, _) -> n = name) base with
      | Some (_, h0, m0) -> (name, h - h0, m - m0)
      | None -> (name, h, m))
    now

(** Empty every registered cache and zero its counters. *)
let clear_all () =
  List.iter
    (fun e ->
      e.e_clear ();
      Atomic.set e.e_stats.cs_hits 0;
      Atomic.set e.e_stats.cs_misses 0)
    !registry

(** [with_enabled b f] runs [f ()] with the master switch forced to
    [b], restoring the previous value on exit (including exceptions). *)
let with_enabled b f =
  let saved = !enabled in
  enabled := b;
  Fun.protect ~finally:(fun () -> enabled := saved) f
