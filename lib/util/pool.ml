(** A stdlib-only work-stealing domain pool for multicore compilation
    (OCaml 5 domains, per-slot chunk deques — no Domainslib).

    Design constraints, in priority order:

    1. {b Determinism.}  [map f xs] must be observably identical to
       [List.map f xs]: results are merged back in list (= program)
       order, and when tasks raise, the exception of the {e earliest}
       item re-raises after every task has finished — callers see the
       exact serial prefix semantics (everything before the faulting
       item completed, nothing after it is observed).  Stealing
       relaxes {e execution} order only; the merge order is fixed.
    2. {b Default off.}  The job count defaults to 1 ([POLARIS_JOBS] or
       [polaris -j N] raise it); at 1 job [map] {e is} [List.map] — no
       domains, no deques, byte-identical to the serial compiler.
    3. {b Cache safety.}  Each task runs with a {!slot} id in
       domain-local storage; the memo tables ({!Symbolic.Cache}) use it
       to route in-phase misses to per-slot shard tables while treating
       the shared store as read-only.  After every fanned-out [map] the
       pool calls {!Cachectl.merge_shards} (on the submitting domain,
       with all workers idle), so shards drain into the shared store at
       a sequential point.

    {b Scheduling.}  The old pool pushed one closure per list element
    through a single mutex-guarded queue with a condition-variable
    handshake per task — measurably slower than serial for the
    fine-grained (unit, nest) tasks the compiler produces.  This pool
    instead {e batches}: a cost-model batcher coalesces elements into
    contiguous index chunks (caller-supplied [?weight] balances them;
    [POLARIS_CHUNK] / [--chunk] pins the size), seeds the chunks into
    per-slot deques, and wakes the workers {e once} per batch.  Each
    slot pops its own deque from the front; a slot that runs dry steals
    the {e back half} of a victim's deque.  Batches that collapse to a
    single chunk run inline on the submitter — no wake-up at all.

    The submitting domain participates in the batch (as slot 0), so
    [-j N] means N domains doing work, not N+1.  Nested submission
    ([map] from inside a task) is a programming error and raises
    {!Nested_submit}: worker domains must never block on work only they
    could execute. *)

(* ------------------------------------------------------------------ *)
(* Job count                                                           *)

(** Hard ceiling on the job count (and the size of per-slot cache shard
    arrays: slot 0 is the submitting domain, 1..max_jobs-1 the
    workers). *)
let max_jobs = Env.max_jobs

let clamp n = if n < 1 then 1 else if n > max_jobs then max_jobs else n

(* POLARIS_JOBS is parsed (with validation) in {!Env}, the single parse
   site for environment knobs.  The process-wide default is atomic so a
   daemon worker reading it mid-[set_jobs] sees one value or the other;
   [with_jobs_here] overrides it per domain. *)
let jobs_default = Atomic.make Env.jobs

let jobs_here : int option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(** Current job count (>= 1): this domain's override if
    {!with_jobs_here} is active, the process default otherwise. *)
let jobs () =
  match !(Domain.DLS.get jobs_here) with
  | Some n -> n
  | None -> Atomic.get jobs_default

(** Set the process-wide job count (clamped to [1 .. max_jobs]);
    [polaris -j N]. *)
let set_jobs n = Atomic.set jobs_default (clamp n)

(** True when [map] will actually fan out (jobs > 1). *)
let parallel () = jobs () > 1

(** [with_jobs n f]: run [f ()] with the process-wide job count forced
    to [n], restoring the previous value on exit (including
    exceptions). *)
let with_jobs n f =
  let saved = Atomic.get jobs_default in
  set_jobs n;
  Fun.protect ~finally:(fun () -> Atomic.set jobs_default saved) f

(** [with_jobs_here n f]: like {!with_jobs} but scoped to the calling
    domain only.  The daemon's compile workers pin their job count to 1
    with this — cross-request parallelism replaces intra-request
    fan-out — without perturbing other domains. *)
let with_jobs_here n f =
  let cell = Domain.DLS.get jobs_here in
  let saved = !cell in
  cell := Some (clamp n);
  Fun.protect ~finally:(fun () -> cell := saved) f

(* ------------------------------------------------------------------ *)
(* Task identity (domain-local)                                        *)

(* [Some i] while the domain holds cache shard slot i: i = 0 on the
   submitting domain of a batch, i >= 1 on pool workers, and a pinned
   id on daemon compile workers ({!with_slot}).  The cache layer keys
   its per-slot shard tables on this. *)
let slot_key : int option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(** Shard slot of the current domain ([None] outside tasks and
    unpinned domains). *)
let slot () = !(Domain.DLS.get slot_key)

(* true only while executing a task of a [map] batch — distinct from
   holding a slot, because daemon compile workers hold a pinned slot
   for cache routing without being pool tasks *)
let task_key : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

(** True while executing inside a pool task. *)
let in_task () = !(Domain.DLS.get task_key)

exception Nested_submit
(** Raised by {!map} when called from inside a pool task. *)

(** [with_slot i f]: run [f ()] with this domain pinned to cache shard
    slot [i].  For long-lived non-pool domains (the daemon's compile
    workers): every cache write routes to shard [i] while the shared
    tier stays read-only.  The caller guarantees slot uniqueness among
    concurrently running pinned domains and that
    {!Cachectl.merge_shards} only runs when all of them are idle.
    Inside [f], {!map} runs serially (a pinned domain must not occupy
    batch slots that belong to the pool). *)
let with_slot i f =
  let cell = Domain.DLS.get slot_key in
  let saved = !cell in
  cell := Some i;
  Fun.protect ~finally:(fun () -> cell := saved) f

(* ------------------------------------------------------------------ *)
(* Scheduler telemetry                                                 *)

(** Cumulative scheduler counters since process start (or the last
    {!reset_counters}): fanned-out batches, inline (single-chunk)
    batches, tasks executed, chunks executed, and successful steal
    transactions. *)
type counters = {
  c_batches : int;
  c_inline : int;
  c_tasks : int;
  c_chunks : int;
  c_steals : int;
}

let batches_n = Atomic.make 0
let inline_n = Atomic.make 0
let tasks_n = Atomic.make 0
let chunks_n = Atomic.make 0
let steals_n = Atomic.make 0

let counters () =
  { c_batches = Atomic.get batches_n; c_inline = Atomic.get inline_n;
    c_tasks = Atomic.get tasks_n; c_chunks = Atomic.get chunks_n;
    c_steals = Atomic.get steals_n }

let counters_delta ~(base : counters) (now : counters) : counters =
  { c_batches = now.c_batches - base.c_batches;
    c_inline = now.c_inline - base.c_inline;
    c_tasks = now.c_tasks - base.c_tasks;
    c_chunks = now.c_chunks - base.c_chunks;
    c_steals = now.c_steals - base.c_steals }

let reset_counters () =
  Atomic.set batches_n 0; Atomic.set inline_n 0; Atomic.set tasks_n 0;
  Atomic.set chunks_n 0; Atomic.set steals_n 0

(* ------------------------------------------------------------------ *)
(* Chunk size                                                          *)

(* POLARIS_CHUNK pins the batcher; None = cost model.  Atomic for the
   same reason as [jobs_default]. *)
let chunk_default : int option Atomic.t = Atomic.make Env.chunk

(** Fixed chunk size in effect ([None] = the cost model decides). *)
let chunk () = Atomic.get chunk_default

(** Pin (or with [None] unpin) the batcher's chunk size;
    [polaris --chunk N]. *)
let set_chunk c = Atomic.set chunk_default (Option.map (fun n -> max 1 n) c)

(* how many chunks the batcher aims to cut per slot: enough headroom
   that a slot finishing early finds something to steal, few enough
   that per-chunk costs stay amortized *)
let chunks_per_slot = 4

(* [plan ?weight k n]: cut [0..k-1] into contiguous chunks as (lo, hi)
   pairs, in index order.  A pinned chunk size wins; otherwise the
   batcher targets [n * chunks_per_slot] chunks, packing by the
   caller's weight estimate when one is given so heavy items don't pile
   into one chunk.  Pure arithmetic on the input list: identical at
   every job count that reaches it. *)
let plan ?weight (k : int) (n : int) : (int * int) list =
  let cut size =
    let rec go lo acc =
      if lo >= k then List.rev acc
      else
        let hi = min k (lo + size) in
        go hi ((lo, hi) :: acc)
    in
    go 0 []
  in
  match chunk () with
  | Some c -> cut c
  | None -> (
    let target_chunks = n * chunks_per_slot in
    match weight with
    | None -> cut (max 1 ((k + target_chunks - 1) / target_chunks))
    | Some w ->
      let weights = Array.init k (fun i -> max 1 (w i)) in
      let total = Array.fold_left ( + ) 0 weights in
      let per_chunk = max 1 ((total + target_chunks - 1) / target_chunks) in
      let acc = ref [] and lo = ref 0 and seen = ref 0 in
      for i = 0 to k - 1 do
        seen := !seen + weights.(i);
        if !seen >= per_chunk || i = k - 1 then begin
          acc := (!lo, i + 1) :: !acc;
          lo := i + 1;
          seen := 0
        end
      done;
      List.rev !acc)

(* ------------------------------------------------------------------ *)
(* Per-slot deques                                                     *)

(* A deque holds (lo, hi) chunks of the current batch.  All chunks are
   seeded before the batch is published and none are added mid-batch,
   so a fixed buffer sized to the batch's chunk count suffices; [head]
   and [tail] delimit the live window.  The owner pops from the front
   (its seeded chunks in ascending index order); a thief steals the
   back half in one transaction.  One mutex per deque: the owner and at
   most one thief contend briefly, never the whole pool. *)
type deque = {
  dq_m : Mutex.t;
  mutable dq_buf : (int * int) array;
  mutable dq_head : int;  (* next owner pop *)
  mutable dq_tail : int;  (* one past the last chunk *)
}

let deque_make cap =
  { dq_m = Mutex.create (); dq_buf = Array.make (max cap 1) (0, 0);
    dq_head = 0; dq_tail = 0 }

let deque_pop (d : deque) : (int * int) option =
  Mutex.lock d.dq_m;
  let r =
    if d.dq_head >= d.dq_tail then None
    else begin
      let c = d.dq_buf.(d.dq_head) in
      d.dq_head <- d.dq_head + 1;
      Some c
    end
  in
  Mutex.unlock d.dq_m;
  r

(* steal the back half of [victim] (at least one chunk) into [mine];
   returns the first stolen chunk to run immediately *)
let deque_steal ~(victim : deque) ~(mine : deque) : (int * int) option =
  Mutex.lock victim.dq_m;
  let live = victim.dq_tail - victim.dq_head in
  if live <= 0 then begin
    Mutex.unlock victim.dq_m;
    None
  end
  else begin
    let take = max 1 (live / 2) in
    let from = victim.dq_tail - take in
    let stolen = Array.sub victim.dq_buf from take in
    victim.dq_tail <- from;
    Mutex.unlock victim.dq_m;
    Mutex.lock mine.dq_m;
    (* the thief's deque is empty (it only steals when dry), so the
       window can be rewound instead of grown *)
    Array.blit stolen 0 mine.dq_buf 0 take;
    mine.dq_head <- 1;
    mine.dq_tail <- take;
    Mutex.unlock mine.dq_m;
    Atomic.incr steals_n;
    Some stolen.(0)
  end

(* ------------------------------------------------------------------ *)
(* The pool                                                            *)

(* One batch = one [map] fan-out: chunks seeded into per-slot deques,
   a shared [run] closure indexing the hidden items/results arrays, and
   an atomic count of unfinished items for completion detection. *)
type batch = {
  b_run : int -> unit;          (* run item [idx], record its result *)
  b_deques : deque array;       (* one per slot, 0 = submitter *)
  b_remaining : int Atomic.t;   (* items not yet finished *)
}

type pool = {
  m : Mutex.t;                 (* guards batch publication and [stop] *)
  work_cv : Condition.t;       (* workers: a new batch (or stop) *)
  done_cv : Condition.t;       (* submitter: the batch completed *)
  mutable current : batch option;
  mutable generation : int;    (* bumped once per published batch *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  size : int;                  (* worker domains (excluding the submitter) *)
}

let the_pool : pool option ref = ref None

(* run chunks for [slot_i] until the batch has no work left for it:
   drain the own deque front-to-back, then steal back halves from the
   other slots (scanning from the right neighbour so thieves spread
   out).  All work is seeded up front, so "own deque empty and every
   victim empty" is final for this slot — it parks with no spinning.
   Whoever finishes the last item retires the batch and signals the
   submitter: one condition-variable transaction per batch, not per
   task. *)
let work_batch (pool : pool) (b : batch) (slot_i : int) =
  let nslots = Array.length b.b_deques in
  let mine = b.b_deques.(slot_i) in
  let run_chunk (lo, hi) =
    Atomic.incr chunks_n;
    for idx = lo to hi - 1 do
      b.b_run idx
    done;
    ignore (Atomic.fetch_and_add tasks_n (hi - lo));
    if Atomic.fetch_and_add b.b_remaining (lo - hi) = hi - lo then begin
      (* this chunk finished the batch *)
      Mutex.lock pool.m;
      pool.current <- None;
      Condition.signal pool.done_cv;
      Mutex.unlock pool.m
    end
  in
  let rec next_steal i =
    if i >= nslots then None
    else
      let v = (slot_i + 1 + i) mod nslots in
      match deque_steal ~victim:b.b_deques.(v) ~mine with
      | Some c -> Some c
      | None -> next_steal (i + 1)
  in
  let rec loop () =
    match deque_pop mine with
    | Some c ->
      run_chunk c;
      loop ()
    | None -> (
      match next_steal 0 with
      | Some c ->
        run_chunk c;
        loop ()
      | None -> ())
  in
  loop ()

let worker_body pool i () =
  (* workers exist only to run tasks: pin slot and task identity once *)
  Domain.DLS.set slot_key (ref (Some i));
  let in_task_cell = ref false in
  Domain.DLS.set task_key in_task_cell;
  let seen = ref 0 in
  Mutex.lock pool.m;
  let rec loop () =
    if pool.stop then Mutex.unlock pool.m
    else
      match pool.current with
      | Some b when !seen <> pool.generation ->
        seen := pool.generation;
        Mutex.unlock pool.m;
        in_task_cell := true;
        work_batch pool b i;
        in_task_cell := false;
        Mutex.lock pool.m;
        loop ()
      | _ ->
        Condition.wait pool.work_cv pool.m;
        loop ()
  in
  loop ()

let create size =
  let pool =
    { m = Mutex.create (); work_cv = Condition.create ();
      done_cv = Condition.create (); current = None; generation = 0;
      stop = false; domains = []; size }
  in
  pool.domains <-
    List.init size (fun i -> Domain.spawn (worker_body pool (i + 1)));
  the_pool := Some pool;
  pool

(** Stop and join the worker domains (idempotent).  The next parallel
    {!map} transparently respawns them; registered with [at_exit] so a
    process never hangs on sleeping workers. *)
let shutdown () =
  match !the_pool with
  | None -> ()
  | Some pool ->
    Mutex.lock pool.m;
    pool.stop <- true;
    Condition.broadcast pool.work_cv;
    Mutex.unlock pool.m;
    List.iter Domain.join pool.domains;
    the_pool := None

let () = at_exit shutdown

let get_pool size =
  match !the_pool with
  | Some p when p.size = size && not p.stop -> p
  | Some _ ->
    shutdown ();
    create size
  | None -> create size

(* ------------------------------------------------------------------ *)
(* Deterministic parallel map                                          *)

type 'a task_result =
  | Ok_ of 'a
  | Err of exn * Printexc.raw_backtrace

(** [map ?weight f xs]: apply [f] to every element of [xs], results in
    input order.  With jobs = 1 (or from a {!with_slot}-pinned domain)
    this {e is} [List.map f xs].  With jobs = N the batcher cuts the
    elements into contiguous chunks — balanced by [?weight]'s relative
    cost estimate when given, or pinned by [POLARIS_CHUNK] — seeds them
    into per-slot deques and lets N domains (the caller's included)
    pop-and-steal until done.  A plan of one chunk short-circuits to
    the serial path: small batches never pay the wake-up.  Once every
    task has finished, cache shards are merged back into the shared
    stores and either the ordered results are returned or, if any task
    raised, the exception of the {e earliest} failed element re-raises
    (with its backtrace) — the serial prefix semantics. *)
let map ?(weight : ('a -> int) option) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  if in_task () then raise Nested_submit;
  (* a pinned domain (daemon compile worker) runs serially: its cache
     writes already route to its own shard, and the pool's batch slots
     belong to pool domains *)
  let n = if slot () <> None then 1 else jobs () in
  if n <= 1 then List.map f xs
  else
    match xs with
    | [] -> []
    | xs ->
      let items = Array.of_list xs in
      let k = Array.length items in
      let chunks =
        plan ?weight:(Option.map (fun w i -> w items.(i)) weight) k n
      in
      (match chunks with
      | [] | [ _ ] ->
        (* one chunk: the whole batch would run on one domain anyway —
           run it here without waking anybody (and without a slot, the
           exact jobs = 1 path) *)
        Atomic.incr inline_n;
        List.map f xs
      | chunks ->
        Atomic.incr batches_n;
        let pool = get_pool (n - 1) in
        let nslots = n in
        let results : 'b task_result option array = Array.make k None in
        let b_run idx =
          results.(idx) <-
            Some
              (match f items.(idx) with
              | v -> Ok_ v
              | exception e -> Err (e, Printexc.get_raw_backtrace ()))
        in
        let carr = Array.of_list chunks in
        let nchunks = Array.length carr in
        let deques = Array.init nslots (fun _ -> deque_make nchunks) in
        (* contiguous block per slot: slot s owns chunks
           [s*nchunks/nslots, (s+1)*nchunks/nslots) in index order, so
           with no stealing each slot walks an ascending range *)
        Array.iteri
          (fun ci c ->
            let s = min (ci * nslots / nchunks) (nslots - 1) in
            let d = deques.(s) in
            d.dq_buf.(d.dq_tail) <- c;
            d.dq_tail <- d.dq_tail + 1)
          carr;
        let b = { b_run; b_deques = deques; b_remaining = Atomic.make k } in
        Mutex.lock pool.m;
        pool.current <- Some b;
        pool.generation <- pool.generation + 1;
        Condition.broadcast pool.work_cv;
        Mutex.unlock pool.m;
        (* participate as slot 0, then wait for the stragglers *)
        let my_slot = Domain.DLS.get slot_key in
        let my_task = Domain.DLS.get task_key in
        my_slot := Some 0;
        my_task := true;
        Fun.protect
          ~finally:(fun () ->
            my_slot := None;
            my_task := false)
          (fun () -> work_batch pool b 0);
        Mutex.lock pool.m;
        while Atomic.get b.b_remaining > 0 do
          Condition.wait pool.done_cv pool.m
        done;
        (* the finisher retired the batch; never let it leak into the
           next generation check *)
        (match pool.current with
        | Some cur when cur == b -> pool.current <- None
        | _ -> ());
        Mutex.unlock pool.m;
        (* all tasks finished and all workers are idle: a sequential
           point — drain the per-slot cache shards into the shared
           stores before anyone consumes the results *)
        Cachectl.merge_shards ();
        (* earliest failure wins: the serial compiler would have raised
           at the first failing element and never evaluated the rest *)
        let first_err = ref None in
        Array.iter
          (fun r ->
            match (r, !first_err) with
            | Some (Err (e, bt)), None -> first_err := Some (e, bt)
            | _ -> ())
          results;
        (match !first_err with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ());
        Array.to_list
          (Array.map
             (function Some (Ok_ v) -> v | _ -> assert false)
             results))
