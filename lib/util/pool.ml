(** A stdlib-only domain pool for multicore compilation (OCaml 5
    domains, [Mutex]/[Condition] work queue — no Domainslib).

    Design constraints, in priority order:

    1. {b Determinism.}  [map f xs] must be observably identical to
       [List.map f xs]: results are merged back in list (= program)
       order, and when tasks raise, the exception of the {e earliest}
       item re-raises after every task has finished — callers see the
       exact serial prefix semantics (everything before the faulting
       item completed, nothing after it is observed).
    2. {b Default off.}  The job count defaults to 1 ([POLARIS_JOBS] or
       [polaris -j N] raise it); at 1 job [map] {e is} [List.map] — no
       domains, no queue, byte-identical to the serial compiler.
    3. {b Cache safety.}  Each task runs with a {!slot} id in
       domain-local storage; the memo tables ({!Symbolic.Cache}) use it
       to route in-phase misses to per-slot shard tables while treating
       the shared store as read-only.  After every [map] the pool calls
       {!Cachectl.merge_shards} (on the submitting domain, with all
       workers idle), so shards drain into the shared generation-tagged
       store at a sequential point.

    The submitting domain participates in the batch (it drains the
    queue as slot 0), so [-j N] means N domains doing work, not N+1.
    Nested submission ([map] from inside a task) is a programming
    error and raises {!Nested_submit}: worker domains must never block
    on work only they could execute. *)

(* ------------------------------------------------------------------ *)
(* Job count                                                           *)

(** Hard ceiling on the job count (and the size of per-slot cache shard
    arrays: slot 0 is the submitting domain, 1..max_jobs-1 the
    workers). *)
let max_jobs = Env.max_jobs

let clamp n = if n < 1 then 1 else if n > max_jobs then max_jobs else n

(* POLARIS_JOBS is parsed (with validation) in {!Env}, the single parse
   site for environment knobs. *)
let jobs_ref = ref Env.jobs

(** Current job count (>= 1). *)
let jobs () = !jobs_ref

(** Set the job count (clamped to [1 .. max_jobs]); [polaris -j N]. *)
let set_jobs n = jobs_ref := clamp n

(** True when [map] will actually fan out (jobs > 1). *)
let parallel () = !jobs_ref > 1

(** [with_jobs n f]: run [f ()] with the job count forced to [n],
    restoring the previous value on exit (including exceptions). *)
let with_jobs n f =
  let saved = !jobs_ref in
  set_jobs n;
  Fun.protect ~finally:(fun () -> jobs_ref := saved) f

(* ------------------------------------------------------------------ *)
(* Task identity (domain-local)                                        *)

(* [Some i] while executing a task of a batch: i = 0 on the submitting
   domain, i >= 1 on worker domains.  The cache layer keys its per-slot
   shard tables on this. *)
let slot_key : int option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(** Shard slot of the currently executing task ([None] outside tasks). *)
let slot () = !(Domain.DLS.get slot_key)

(** True while executing inside a pool task. *)
let in_task () = slot () <> None

exception Nested_submit
(** Raised by {!map} when called from inside a pool task. *)

(* ------------------------------------------------------------------ *)
(* The pool                                                            *)

type pool = {
  m : Mutex.t;
  work_cv : Condition.t;   (* workers: the queue may have work (or stop) *)
  done_cv : Condition.t;   (* submitter: a batch may have completed *)
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  size : int;              (* worker domains (excluding the submitter) *)
}

let the_pool : pool option ref = ref None

let worker_body pool i () =
  (* workers exist only to run tasks: pin the slot once *)
  Domain.DLS.set slot_key (ref (Some i));
  Mutex.lock pool.m;
  let rec loop () =
    if pool.stop then Mutex.unlock pool.m
    else
      match Queue.take_opt pool.queue with
      | Some task ->
        Mutex.unlock pool.m;
        task ();
        Mutex.lock pool.m;
        loop ()
      | None ->
        Condition.wait pool.work_cv pool.m;
        loop ()
  in
  loop ()

let create size =
  let pool =
    { m = Mutex.create (); work_cv = Condition.create ();
      done_cv = Condition.create (); queue = Queue.create (); stop = false;
      domains = []; size }
  in
  pool.domains <-
    List.init size (fun i -> Domain.spawn (worker_body pool (i + 1)));
  the_pool := Some pool;
  pool

(** Stop and join the worker domains (idempotent).  The next parallel
    {!map} transparently respawns them; registered with [at_exit] so a
    process never hangs on sleeping workers. *)
let shutdown () =
  match !the_pool with
  | None -> ()
  | Some pool ->
    Mutex.lock pool.m;
    pool.stop <- true;
    Condition.broadcast pool.work_cv;
    Mutex.unlock pool.m;
    List.iter Domain.join pool.domains;
    the_pool := None

let () = at_exit shutdown

let get_pool size =
  match !the_pool with
  | Some p when p.size = size && not p.stop -> p
  | Some _ ->
    shutdown ();
    create size
  | None -> create size

(* ------------------------------------------------------------------ *)
(* Deterministic parallel map                                          *)

type 'a task_result =
  | Ok_ of 'a
  | Err of exn * Printexc.raw_backtrace

(** [map f xs]: apply [f] to every element of [xs], results in input
    order.  With jobs = 1 this {e is} [List.map f xs].  With jobs = N
    the elements are evaluated on N domains (the caller's included);
    once every task has finished, cache shards are merged back into the
    shared stores and either the ordered results are returned or, if
    any task raised, the exception of the {e earliest} failed element
    re-raises (with its backtrace) — the serial prefix semantics. *)
let map (f : 'a -> 'b) (xs : 'a list) : 'b list =
  if in_task () then raise Nested_submit;
  let n = jobs () in
  if n <= 1 then List.map f xs
  else
    match xs with
    | [] -> []
    | xs ->
      let pool = get_pool (n - 1) in
      let items = Array.of_list xs in
      let k = Array.length items in
      let results : 'b task_result option array = Array.make k None in
      let remaining = ref k in
      let run_one idx () =
        let r =
          match f items.(idx) with
          | v -> Ok_ v
          | exception e -> Err (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock pool.m;
        results.(idx) <- Some r;
        decr remaining;
        if !remaining = 0 then Condition.broadcast pool.done_cv;
        Mutex.unlock pool.m
      in
      Mutex.lock pool.m;
      for idx = 0 to k - 1 do
        Queue.add (run_one idx) pool.queue
      done;
      Condition.broadcast pool.work_cv;
      (* participate as slot 0, then wait for the workers *)
      let my_slot = Domain.DLS.get slot_key in
      let rec drain () =
        match Queue.take_opt pool.queue with
        | Some task ->
          Mutex.unlock pool.m;
          my_slot := Some 0;
          Fun.protect ~finally:(fun () -> my_slot := None) task;
          Mutex.lock pool.m;
          drain ()
        | None ->
          while !remaining > 0 do
            Condition.wait pool.done_cv pool.m
          done
      in
      drain ();
      Mutex.unlock pool.m;
      (* all tasks finished and all workers are idle: a sequential
         point — drain the per-slot cache shards into the shared
         stores before anyone consumes the results *)
      Cachectl.merge_shards ();
      (* earliest failure wins: the serial compiler would have raised
         at the first failing element and never evaluated the rest *)
      let first_err = ref None in
      Array.iter
        (fun r ->
          match (r, !first_err) with
          | Some (Err (e, bt)), None -> first_err := Some (e, bt)
          | _ -> ())
        results;
      (match !first_err with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list
        (Array.map
           (function Some (Ok_ v) -> v | _ -> assert false)
           results)
