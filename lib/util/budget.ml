(** Analysis budgets: step fuel plus an optional CPU-time deadline.

    The symbolic engine and the dependence tests are recursive searches
    whose worst case is exponential; Polaris's answer (paper §2) was that
    an analysis that cannot finish must fail {e safe} — the verdict
    degrades to "unknown" and the loop stays serial, it never loops
    forever or aborts the compilation.  A [Budget.t] is the shared
    currency of that contract: every elimination / monotonicity step of
    {!Symbolic.Compare} and every access-pair test of the dependence
    drivers spends from one budget, and once it is exhausted every
    further proof attempt answers "unprovable" immediately.

    Exhaustion is sticky: once [spend] refuses, the budget stays
    exhausted, so a search cannot oscillate between starved and funded
    sub-proofs.  Budgets are deterministic for a fixed step allowance;
    the optional deadline (checked against [Sys.time ()]) trades that
    determinism for a hard bound on pathological inputs and is off by
    default. *)

type t = {
  mutable steps : int;       (** remaining step fuel (meaningless if infinite) *)
  infinite : bool;           (** no step limit *)
  deadline : float option;   (** absolute [Sys.time] bound *)
  mutable exhausted : bool;
  mutable used : int;        (** steps successfully consumed so far *)
}

(** [create ?steps ?deadline_s ()]: a budget with [steps] of fuel
    (omit for unlimited steps) and an optional deadline [deadline_s]
    CPU-seconds from now. *)
let create ?steps ?deadline_s () =
  { steps = Option.value steps ~default:0;
    infinite = steps = None;
    deadline = Option.map (fun d -> Sys.time () +. d) deadline_s;
    exhausted = false;
    used = 0 }

(** A budget that never exhausts on its own. *)
let unlimited () = create ()

let exhausted t = t.exhausted

(** Force exhaustion (the chaos injector's lever; also useful to cancel
    an in-flight analysis). *)
let exhaust t = t.exhausted <- true

(** [spend t n] consumes [n] steps.  Returns [true] if the budget still
    stands, [false] (sticky) if it is now — or already was — exhausted.
    Callers must treat [false] as "stop proving, answer unknown". *)
let spend t n =
  if t.exhausted then false
  else begin
    (if not t.infinite then
       if t.steps < n then t.exhausted <- true
       else t.steps <- t.steps - n);
    (match t.deadline with
    | Some d when Sys.time () > d -> t.exhausted <- true
    | _ -> ());
    if not t.exhausted then t.used <- t.used + n;
    not t.exhausted
  end

(** [check t] = [spend t 0]: deadline-only probe. *)
let check t = spend t 0

(** Steps successfully consumed so far.  Memoization layers measure the
    delta of [used] across a computation so a later cache hit can replay
    exactly the same consumption (see {!Cachectl}). *)
let used t = t.used

(** [afford t n] is [true] iff [spend t n] would succeed, without
    mutating the budget (in particular without tripping sticky
    exhaustion).  Used by replaying caches: a hit is only taken when the
    recorded cost is affordable, otherwise the computation reruns
    honestly and degrades exactly as the uncached compiler would. *)
let afford t n =
  (not t.exhausted)
  && (t.infinite || t.steps >= n)
  && (match t.deadline with Some d -> Sys.time () <= d | None -> true)

let pp ppf t =
  if t.exhausted then Fmt.string ppf "exhausted"
  else if t.infinite then Fmt.string ppf "unlimited"
  else Fmt.pf ppf "%d steps left" t.steps
