(** The single parse site for every [POLARIS_*] environment variable.

    Historically each subsystem read its own variable ad hoc —
    [Pool] parsed [POLARIS_JOBS] (silently defaulting on garbage),
    [Cachectl] string-compared [POLARIS_NO_CACHE] and
    [POLARIS_CACHE_DEBUG] against ["1"].  Every knob is now parsed,
    validated and defaulted here, once, at module initialization;
    malformed values print a warning on stderr and fall back to the
    default instead of being silently swallowed.  [Core.Config]
    documents the knobs and re-exports the parsed values; nothing else
    in the tree may call [Sys.getenv] for a [POLARIS_*] name.

    The [parse_*] functions are pure and exposed so the unit tests can
    pin the validation behaviour without touching the process
    environment. *)

(** Hard ceiling on the job count; {!Pool} sizes its per-slot cache
    shard arrays with it. *)
let max_jobs = 64

(** [parse_jobs raw]: a job count in [1 .. max_jobs].  Values above the
    ceiling clamp (a big [-j] is a wish, not an error); zero, negative
    and non-numeric values are rejected. *)
let parse_jobs raw : (int, string) result =
  match int_of_string_opt (String.trim raw) with
  | None -> Error (Printf.sprintf "expected an integer, got %S" raw)
  | Some n when n < 1 -> Error (Printf.sprintf "expected a job count >= 1, got %d" n)
  | Some n -> Ok (if n > max_jobs then max_jobs else n)

(** [parse_flag raw]: a boolean knob.  Accepts 1/0, true/false, yes/no,
    on/off (case-insensitive); anything else is rejected. *)
let parse_flag raw : (bool, string) result =
  match String.lowercase_ascii (String.trim raw) with
  | "1" | "true" | "yes" | "on" -> Ok true
  | "0" | "false" | "no" | "off" -> Ok false
  | _ ->
    Error
      (Printf.sprintf "expected a boolean (1/0/true/false/yes/no/on/off), got %S"
         raw)

let read var ~default parse =
  match Sys.getenv_opt var with
  | None -> default
  | Some raw -> (
    match parse raw with
    | Ok v -> v
    | Error msg ->
      Printf.eprintf "polaris: warning: ignoring %s=%s: %s\n%!" var raw msg;
      default)

(** Parsed [POLARIS_JOBS] (default 1: parallelism is opt-in). *)
let jobs : int = read "POLARIS_JOBS" ~default:1 parse_jobs

(** Parsed [POLARIS_NO_CACHE] (default false: caches on). *)
let no_cache : bool = read "POLARIS_NO_CACHE" ~default:false parse_flag

(** Parsed [POLARIS_CACHE_DEBUG] (default false). *)
let cache_debug : bool = read "POLARIS_CACHE_DEBUG" ~default:false parse_flag
