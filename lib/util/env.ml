(** The single parse site for every [POLARIS_*] environment variable.

    Historically each subsystem read its own variable ad hoc —
    [Pool] parsed [POLARIS_JOBS] (silently defaulting on garbage),
    [Cachectl] string-compared [POLARIS_NO_CACHE] and
    [POLARIS_CACHE_DEBUG] against ["1"].  Every knob is now parsed,
    validated and defaulted here, once, at module initialization;
    malformed values print a warning on stderr and fall back to the
    default instead of being silently swallowed.  [Core.Config]
    documents the knobs and re-exports the parsed values; nothing else
    in the tree may call [Sys.getenv] for a [POLARIS_*] name.

    The [parse_*] functions are pure and exposed so the unit tests can
    pin the validation behaviour without touching the process
    environment. *)

(** Hard ceiling on the job count; {!Pool} sizes its per-slot cache
    shard arrays with it. *)
let max_jobs = 64

(** [parse_jobs raw]: a job count in [1 .. max_jobs].  Values above the
    ceiling clamp (a big [-j] is a wish, not an error); zero, negative
    and non-numeric values are rejected. *)
let parse_jobs raw : (int, string) result =
  match int_of_string_opt (String.trim raw) with
  | None -> Error (Printf.sprintf "expected an integer, got %S" raw)
  | Some n when n < 1 -> Error (Printf.sprintf "expected a job count >= 1, got %d" n)
  | Some n -> Ok (if n > max_jobs then max_jobs else n)

(** [parse_flag raw]: a boolean knob.  Accepts 1/0, true/false, yes/no,
    on/off (case-insensitive); anything else is rejected. *)
let parse_flag raw : (bool, string) result =
  match String.lowercase_ascii (String.trim raw) with
  | "1" | "true" | "yes" | "on" -> Ok true
  | "0" | "false" | "no" | "off" -> Ok false
  | _ ->
    Error
      (Printf.sprintf "expected a boolean (1/0/true/false/yes/no/on/off), got %S"
         raw)

(** [parse_mb raw]: a size in megabytes, [> 0].  Used for the
    persistent-store bound [POLARIS_MAX_CACHE_MB]; zero, negative and
    non-numeric values are rejected (a store bounded at 0 MB would
    silently evict everything — if you want the store off, unset
    [POLARIS_CACHE_DIR]). *)
let parse_mb raw : (int, string) result =
  match int_of_string_opt (String.trim raw) with
  | None -> Error (Printf.sprintf "expected an integer (megabytes), got %S" raw)
  | Some n when n < 1 ->
    Error (Printf.sprintf "expected a size >= 1 MB, got %d" n)
  | Some n -> Ok n

(** [parse_path raw]: a filesystem path — any non-empty string after
    trimming.  Used for [POLARIS_CACHE_DIR] and [POLARIS_SOCKET];
    whitespace-only values are rejected rather than producing a daemon
    that listens on "". *)
let parse_path raw : (string, string) result =
  let t = String.trim raw in
  if t = "" then Error "expected a non-empty path" else Ok t

(** [parse_count raw]: a positive integer, unclamped.  Used for the
    daemon's admission and flush-cadence knobs ([POLARIS_MAX_SESSIONS],
    [POLARIS_FLUSH_EVERY]); zero would mean "admit nothing" / "flush on
    every request boundary including none", which is never what a
    misconfigured deployment wants silently. *)
let parse_count raw : (int, string) result =
  match int_of_string_opt (String.trim raw) with
  | None -> Error (Printf.sprintf "expected an integer, got %S" raw)
  | Some n when n < 1 -> Error (Printf.sprintf "expected a count >= 1, got %d" n)
  | Some n -> Ok n

(** [parse_seconds raw]: a strictly positive duration in seconds
    (fractions allowed).  Used for [POLARIS_IDLE_TIMEOUT_S] and
    [POLARIS_FLUSH_INTERVAL_S]; zero and negative values are rejected —
    a zero idle timeout would evict every session at the first poll. *)
let parse_seconds raw : (float, string) result =
  match float_of_string_opt (String.trim raw) with
  | None -> Error (Printf.sprintf "expected a duration in seconds, got %S" raw)
  | Some s when not (Float.is_finite s) || s <= 0.0 ->
    Error (Printf.sprintf "expected a duration > 0, got %s" (String.trim raw))
  | Some s -> Ok s

(** [parse_chunk raw]: a task-batch size for the work-stealing pool, in
    [1 .. 1_000_000].  One chunk is one scheduler transaction, so a
    chunk of 0 would livelock the batcher and absurd sizes are a typo,
    not a wish: both are rejected. *)
let parse_chunk raw : (int, string) result =
  match int_of_string_opt (String.trim raw) with
  | None -> Error (Printf.sprintf "expected an integer, got %S" raw)
  | Some n when n < 1 ->
    Error (Printf.sprintf "expected a chunk size >= 1, got %d" n)
  | Some n when n > 1_000_000 ->
    Error (Printf.sprintf "expected a chunk size <= 1000000, got %d" n)
  | Some n -> Ok n

(** [parse_inflight raw]: the daemon's concurrent-compile bound, in
    [1 .. max_jobs].  Each in-flight compile occupies a worker domain
    with a dedicated cache shard slot, so the job-count ceiling is also
    the hard ceiling here; larger values clamp like [parse_jobs]. *)
let parse_inflight raw : (int, string) result =
  match int_of_string_opt (String.trim raw) with
  | None -> Error (Printf.sprintf "expected an integer, got %S" raw)
  | Some n when n < 1 ->
    Error (Printf.sprintf "expected an in-flight bound >= 1, got %d" n)
  | Some n -> Ok (if n > max_jobs then max_jobs else n)

(** Hard ceiling on runtime execution domains; the modeled machine is
    an 8-way SGI Challenge and the real executor mirrors its block
    schedule, but larger hosts may still ask for more. *)
let max_runtime_procs = 64

(** [parse_procs raw]: a runtime domain count in
    [1 .. max_runtime_procs].  Values above the ceiling clamp (like
    [parse_jobs]); zero, negative and non-numeric values are
    rejected. *)
let parse_procs raw : (int, string) result =
  match int_of_string_opt (String.trim raw) with
  | None -> Error (Printf.sprintf "expected an integer, got %S" raw)
  | Some n when n < 1 ->
    Error (Printf.sprintf "expected a processor count >= 1, got %d" n)
  | Some n -> Ok (if n > max_runtime_procs then max_runtime_procs else n)

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '-'

let is_name s = s <> "" && String.for_all is_name_char s

(** [parse_pipeline_spec raw]: the {e syntax} of a pipeline spec — a
    preset name, or [custom:pass1,pass2,...] with non-empty pass names.
    Resolution against the pass registry (which lives above [Util])
    happens at the use site via [Core.Registry.parse]; this layer only
    rejects strings that cannot be any pipeline, so a typo warns here
    instead of surfacing as a confusing registry error. *)
let parse_pipeline_spec raw : (string, string) result =
  let t = String.trim raw in
  if t = "" then Error "expected a pipeline name or custom:p1,p2,..."
  else
    match String.index_opt t ':' with
    | None ->
      if is_name t then Ok t
      else Error (Printf.sprintf "expected a pipeline name, got %S" t)
    | Some i ->
      let head = String.sub t 0 i in
      let tail = String.sub t (i + 1) (String.length t - i - 1) in
      if String.lowercase_ascii head <> "custom" then
        Error (Printf.sprintf "expected 'custom:...', got %S" t)
      else
        let passes =
          List.map String.trim (String.split_on_char ',' tail)
          |> List.filter (fun s -> s <> "")
        in
        if passes = [] then Error "custom: pipeline lists no passes"
        else if List.for_all is_name passes then Ok t
        else Error (Printf.sprintf "malformed pass name in %S" t)

(** [parse_backend_name raw]: the syntax of a backend name (the
    registry in [lib/backend] resolves it).  Lower-cased, so
    [POLARIS_BACKEND=F77-OMP] works. *)
let parse_backend_name raw : (string, string) result =
  let t = String.lowercase_ascii (String.trim raw) in
  if is_name t then Ok t
  else Error (Printf.sprintf "expected a backend name, got %S" raw)

let read var ~default parse =
  match Sys.getenv_opt var with
  | None -> default
  | Some raw -> (
    match parse raw with
    | Ok v -> v
    | Error msg ->
      Printf.eprintf "polaris: warning: ignoring %s=%s: %s\n%!" var raw msg;
      default)

(** Parsed [POLARIS_JOBS] (default 1: parallelism is opt-in). *)
let jobs : int = read "POLARIS_JOBS" ~default:1 parse_jobs

(** Parsed [POLARIS_MAX_INFLIGHT]: how many compile requests the
    daemon may execute concurrently (default 1: requests are
    serialized, the pre-concurrency behaviour). *)
let max_inflight : int = read "POLARIS_MAX_INFLIGHT" ~default:1 parse_inflight

(** Parsed [POLARIS_NO_CACHE] (default false: caches on). *)
let no_cache : bool = read "POLARIS_NO_CACHE" ~default:false parse_flag

(** Parsed [POLARIS_CACHE_DEBUG] (default false). *)
let cache_debug : bool = read "POLARIS_CACHE_DEBUG" ~default:false parse_flag

(* option-valued knobs: absence is meaningful (feature off), so the
   default is None and a malformed value warns and stays off *)
let read_opt var parse =
  read var ~default:None (fun raw -> Result.map Option.some (parse raw))

(** Parsed [POLARIS_CHUNK]: fixed task-batch size for the
    work-stealing pool ([None] = the pool's cost model picks chunk
    sizes per batch). *)
let chunk : int option = read_opt "POLARIS_CHUNK" parse_chunk

(** Parsed [POLARIS_CACHE_DIR]: directory of the daemon's persistent
    analysis store ([None] = persistence off). *)
let cache_dir : string option = read_opt "POLARIS_CACHE_DIR" parse_path

(** Parsed [POLARIS_MAX_CACHE_MB]: size bound of the persistent store
    in megabytes (default 64). *)
let max_cache_mb : int = read "POLARIS_MAX_CACHE_MB" ~default:64 parse_mb

(** Parsed [POLARIS_SOCKET]: unix-domain socket path of the compile
    daemon ([None] = the CLI's default path). *)
let socket : string option = read_opt "POLARIS_SOCKET" parse_path

(** Parsed [POLARIS_RUNTIME_PROCS]: how many OCaml domains
    [Machine.Parexec] uses to execute DOALL/speculative loops for real
    ([None] = auto: the host's recommended domain count capped at the
    modeled machine size).  Deliberately distinct from [POLARIS_JOBS]:
    compile-side pool state must not leak into runtime execution. *)
let runtime_procs : int option = read_opt "POLARIS_RUNTIME_PROCS" parse_procs

(** Parsed [POLARIS_PIPELINE]: default pass pipeline for compiles that
    don't say otherwise ([None] = the built-in [thorough] preset).
    Syntax-checked here; resolved against the pass registry at the use
    site, which warns and falls back to the default on unknown
    names. *)
let pipeline : string option = read_opt "POLARIS_PIPELINE" parse_pipeline_spec

(** Parsed [POLARIS_BACKEND]: default emission backend ([None] = f77).
    Same split as [pipeline]: syntax here, registry resolution at the
    use site. *)
let backend : string option = read_opt "POLARIS_BACKEND" parse_backend_name

(** Parsed [POLARIS_MAX_SESSIONS]: the daemon's concurrent-session
    admission cap; connections beyond it are shed with a [Busy]
    response (default 64). *)
let max_sessions : int = read "POLARIS_MAX_SESSIONS" ~default:64 parse_count

(** Parsed [POLARIS_IDLE_TIMEOUT_S]: seconds of per-connection
    inactivity after which the daemon evicts the session (default
    600 s). *)
let idle_timeout_s : float =
  read "POLARIS_IDLE_TIMEOUT_S" ~default:600.0 parse_seconds

(** Parsed [POLARIS_FLUSH_EVERY]: flush the persistent store to disk
    after this many compile requests, bounding what a SIGKILL can lose
    (default 64). *)
let flush_every : int = read "POLARIS_FLUSH_EVERY" ~default:64 parse_count

(** Parsed [POLARIS_FLUSH_INTERVAL_S]: also flush the persistent store
    after this many seconds with unflushed work (default 30 s). *)
let flush_interval_s : float =
  read "POLARIS_FLUSH_INTERVAL_S" ~default:30.0 parse_seconds
