(** Closed-form symbolic summation (Faulhaber).

    The induction-variable pass needs [sum_{a=lo}^{hi} p(a)] in closed
    form, where [p] is a polynomial whose bounds may depend on outer
    loop indices (triangular nests, paper §3.2 / Fig. 1).  Power sums
    [S_k(n) = sum_{x=0}^{n} x^k] are generated from the standard
    recurrence

      (k+1) S_k(n) = (n+1)^{k+1} - sum_{j<k} C(k+1, j) S_j(n)

    with exact rational coefficients, so e.g. [S_1(n) = (n^2+n)/2].

    The closed form equals the sum for all [hi >= lo - 1] (empty sums
    are 0); for [hi < lo - 1] it extrapolates, which is the standard
    assumption for normalized countable loops. *)

open Util

let binomial n k =
  let k = min k (n - k) in
  let rec go acc i = if i > k then acc else go (acc * (n - k + i) / i) (i + 1) in
  if k < 0 then 0 else go 1 1

(* the distinguished summation variable inside the power-sum polynomials *)
let n_atom = Atom.var "__SUM_N__"
let n_poly = Poly.of_atom n_atom

(* Memoized S_0..S_d as an immutable array published through an atomic:
   readers never take a lock — the common case (the table already holds
   S_k) is one [Atomic.get] and an array index.  The table outlives
   (and is shared by) the parallel dependence phase and the daemon's
   concurrent compile workers, so extension happens under a mutex and
   republishes a fresh array; a reader racing the publication sees
   either snapshot, and S_k is a pure function of k, so both agree.
   S_k for k' <= k is computed bottom-up so the extension loop can read
   its own snapshot-in-progress. *)
let power_sums : Poly.t array Atomic.t = Atomic.make [||]
let power_sums_mutex = Mutex.create ()

let compute_power_sum (lower : Poly.t array) k : Poly.t =
  if k = 0 then Poly.add n_poly Poly.one (* S_0(n) = n + 1 *)
  else begin
    let np1_pow = Poly.pow (Poly.add n_poly Poly.one) (k + 1) in
    let correction =
      List.fold_left
        (fun acc j ->
          Poly.add acc
            (Poly.scale (Rat.of_int (binomial (k + 1) j)) lower.(j)))
        Poly.zero
        (List.init k (fun j -> j))
    in
    Poly.scale (Rat.make 1 (k + 1)) (Poly.sub np1_pow correction)
  end

let power_sum k : Poly.t =
  let snap = Atomic.get power_sums in
  if k < Array.length snap then snap.(k)
  else
    Mutex.protect power_sums_mutex (fun () ->
        (* re-read under the lock: another domain may have extended *)
        let snap = Atomic.get power_sums in
        if k < Array.length snap then snap.(k)
        else begin
          let ext = Array.make (k + 1) Poly.zero in
          Array.blit snap 0 ext 0 (Array.length snap);
          for j = Array.length snap to k do
            ext.(j) <- compute_power_sum ext j
          done;
          Atomic.set power_sums ext;
          ext.(k)
        end)

(** [sum_powers k hi] = closed form of [sum_{x=0}^{hi} x^k] with [hi] a
    polynomial. *)
let sum_powers k (hi : Poly.t) : Poly.t = Poly.subst n_atom hi (power_sum k)

(** [sum ~index ~lo ~hi p] = closed form of [sum_{index=lo}^{hi} p].

    [p] may contain [index] (as the atom [Atom.var index]) up to degree 8
    as well as arbitrary other atoms; [lo] and [hi] must not contain
    [index].

    @raise Invalid_argument if a bound mentions the summation index or
    an opaque atom of [p] captures the index (sum of such a term has no
    closed form here). *)
let sum ~(index : string) ~(lo : Poly.t) ~(hi : Poly.t) (p : Poly.t) : Poly.t =
  let a = Atom.var index in
  if Poly.contains_atom a lo || Poly.contains_atom a hi then
    invalid_arg "Summation.sum: bound depends on the summation index";
  List.iter
    (fun at ->
      match at with
      | Atom.Aopaque _ when Atom.mentions (Fir.Symtab.norm index) at ->
        invalid_arg "Summation.sum: opaque atom captures the summation index"
      | _ -> ())
    (Poly.atoms p);
  let lo_m1 = Poly.sub lo Poly.one in
  List.fold_left
    (fun acc (k, coeff) ->
      let piece =
        if k = 0 then
          (* sum of a constant-in-index coefficient: coeff * (hi - lo + 1) *)
          Poly.mul coeff (Poly.add (Poly.sub hi lo) Poly.one)
        else
          Poly.mul coeff (Poly.sub (sum_powers k hi) (sum_powers k lo_m1))
      in
      Poly.add acc piece)
    Poly.zero (Poly.coeffs_in a p)
