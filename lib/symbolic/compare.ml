(** Symbolic comparison of polynomials under a range environment.

    The engine of the range test (paper §3.3.1): the minimum or maximum
    of a polynomial over a set of bounded atoms is computed by repeated
    monotone elimination — determine the sign of the forward difference
    [p(a+1) - p(a)] (recursively, with the same machinery), then
    substitute the appropriate interval endpoint for [a].  Comparing two
    expressions reduces to bounding the sign of their difference. *)

open Util

type monotonicity = Nondecreasing | Nonincreasing | Constant | Unknown_mono

let default_fuel = 16

(* the ambient budget when the caller does not thread one: unlimited, so
   behaviour without a budget is exactly the pre-budget engine (the
   per-call [fuel] still bounds recursion depth; the budget bounds total
   work across one verdict) *)
let no_budget = Util.Budget.unlimited ()

(* Memo tables for the two engine entry points every proof funnels
   through.  [eliminate] and [monotonicity] are deterministic functions
   of (fuel, env, polynomial, ...) except for budget starvation, which
   the replay discipline of [Cache.memo_budgeted] reproduces exactly:
   entries record the step cost of the original computation, hits replay
   that spend, and computations that starved are never cached.  Keys put
   the cheap discriminators (fuel, flags) first so structural equality
   on collisions fails fast. *)
let elim_cache :
    ( int * bool * [ `Min | `Max ] * Poly.t * Atom.t list * Range.env,
      (Poly.t, Poly.t) result * int )
    Cache.t =
  Cache.create ~name:"compare.eliminate" ~persist:true ()

let mono_cache :
    (int * Atom.t * Poly.t * Range.env, monotonicity * int) Cache.t =
  Cache.create ~name:"compare.monotonicity" ~persist:true ()

(* atoms to try eliminating, in environment order (innermost scope
   first), duplicates removed *)
let env_atoms_in_order (env : Range.env) (p : Poly.t) =
  let atoms = Poly.atoms p in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (a, _) ->
      if List.exists (Atom.equal a) atoms && not (Hashtbl.mem seen a) then begin
        Hashtbl.replace seen a ();
        Some a
      end
      else None)
    env

(** Forward difference of [p] in atom [a]: [p(a+1) - p(a)]. *)
let forward_diff (a : Atom.t) (p : Poly.t) : Poly.t =
  let ap1 = Poly.add (Poly.of_atom a) Poly.one in
  Poly.sub (Poly.subst a ap1 p) p

let rec lower_const ?(fuel = default_fuel) ?(budget = no_budget)
    (env : Range.env) (p : Poly.t) : Rat.t option =
  extremum_const ~fuel ~budget env `Min p

and upper_const ?(fuel = default_fuel) ?(budget = no_budget)
    (env : Range.env) (p : Poly.t) : Rat.t option =
  extremum_const ~fuel ~budget env `Max p

and extremum_const ~fuel ~budget env dir p =
  match
    eliminate ~fuel ~budget ~grow:true env dir ~over:(env_atoms_in_order env p) p
  with
  | Ok q | Error q -> Poly.const_val q

(** Eliminate the atoms of [over] from [p] by monotone substitution of
    interval endpoints, retrying in any order until no progress (an
    atom's monotonicity may only become provable after another has been
    substituted).  [Ok q] if every [over] atom was eliminated, [Error q]
    with the partial result otherwise.  Atoms outside [over] are left
    symbolic unless [grow] is set, in which case env-bounded atoms
    introduced by substituted bounds are eliminated too (needed when the
    goal is a constant bound and loop bounds are correlated, e.g.
    [K <= I-1] under [I <= N]). *)
and eliminate ?(fuel = default_fuel) ?(budget = no_budget) ?(grow = false)
    (env : Range.env) dir ~(over : Atom.t list) (p : Poly.t) :
    (Poly.t, Poly.t) result =
  Cache.memo_budgeted elim_cache ~budget (fuel, grow, dir, p, over, env)
    (fun () -> eliminate_uncached ~fuel ~budget ~grow env dir ~over p)

and eliminate_uncached ~fuel ~budget ~grow (env : Range.env) dir
    ~(over : Atom.t list) (p : Poly.t) : (Poly.t, Poly.t) result =
  if fuel <= 0 || not (Util.Budget.spend budget 1) then Error p
  else
    (* substituted bounds may reintroduce over-atoms (cyclic bounds);
       bound the number of elimination rounds *)
    let max_rounds = (2 * (List.length over + List.length env)) + 4 in
    (* does the interval of [b] reference atom [a]?  such an [a] must be
       eliminated *after* [b], or the correlation [b <= f(a)] is lost and
       precision suffers (e.g. proving K <= I-1 under K in [1,I-1]) *)
    let bound_references b a =
      match Range.find env b with
      | None -> false
      | Some iv ->
        let in_bound = function
          | Range.Finite q -> (
            Poly.contains_atom a q
            ||
            match a with
            | Atom.Avar v -> Poly.mentions_var v q
            | Atom.Aopaque _ -> false)
          | Range.Neg_inf | Range.Pos_inf -> false
        in
        in_bound iv.lo || in_bound iv.hi
    in
    let order_present atoms =
      let referenced a =
        List.exists (fun b -> (not (Atom.equal a b)) && bound_references b a) atoms
      in
      let leaves, rest = List.partition (fun a -> not (referenced a)) atoms in
      leaves @ rest
    in
    let rec pass p rounds =
      let present =
        if grow then env_atoms_in_order env p
        else List.filter (fun a -> Poly.contains_atom a p) over
      in
      if present = [] then Ok p
      else if rounds <= 0 || not (Util.Budget.spend budget 1) then Error p
      else
        let rec try_each = function
          | [] -> Error p
          | a :: rest -> (
            match eliminate_atom ~fuel ~budget env dir a p with
            | Some p' -> pass p' (rounds - 1)
            | None -> try_each rest)
        in
        try_each (order_present present)
    in
    pass p max_rounds

(** Symbolic extremum over every env-bounded atom of [p]; [None] when
    some atom resists elimination. *)
and extremum ?(fuel = default_fuel) ?(budget = no_budget) (env : Range.env)
    dir (p : Poly.t) : Poly.t option =
  match eliminate ~fuel ~budget env dir ~over:(env_atoms_in_order env p) p with
  | Ok q -> Some q
  | Error _ -> None

and eliminate_atom ~fuel ~budget env dir a p =
  match Range.find env a with
  | None -> None
  | Some iv -> (
    let mono = monotonicity ~fuel:(fuel - 1) ~budget env a p in
    let pick_bound b =
      match b with
      | Range.Finite q when not (Poly.contains_atom a q) ->
        Some (Poly.subst a q p)
      | _ -> None
    in
    match (mono, dir) with
    | Constant, _ -> Some p (* cannot happen: p contains a *)
    | Nondecreasing, `Min | Nonincreasing, `Max -> pick_bound iv.lo
    | Nondecreasing, `Max | Nonincreasing, `Min -> pick_bound iv.hi
    | Unknown_mono, _ -> None)

(** Monotonicity of [p] in [a] over [env], by the sign of the forward
    difference (which is itself bounded recursively). *)
and monotonicity ?(fuel = default_fuel) ?(budget = no_budget)
    (env : Range.env) (a : Atom.t) (p : Poly.t) : monotonicity =
  Cache.memo_budgeted mono_cache ~budget (fuel, a, p, env) (fun () ->
      monotonicity_uncached ~fuel ~budget env a p)

and monotonicity_uncached ~fuel ~budget (env : Range.env) (a : Atom.t)
    (p : Poly.t) : monotonicity =
  if fuel <= 0 || not (Util.Budget.spend budget 1) then Unknown_mono
  else
    let d = forward_diff a p in
    if Poly.is_zero d then Constant
    else if
      match lower_const ~fuel:(fuel - 1) ~budget env d with
      | Some c -> Rat.sign c >= 0
      | None -> false
    then Nondecreasing
    else if
      match upper_const ~fuel:(fuel - 1) ~budget env d with
      | Some c -> Rat.sign c <= 0
      | None -> false
    then Nonincreasing
    else Unknown_mono

(* ------------------------------------------------------------------ *)
(* Relational proofs                                                   *)

(* every atom is integer-valued, so a polynomial with integral
   coefficients that is > c is also >= c+1 *)
let integral_coeffs (p : Poly.t) =
  List.for_all (fun (_, c) -> Rat.is_integer c) p

(** Prove [p >= q] over [env]. *)
let prove_ge ?fuel ?budget env p q =
  match lower_const ?fuel ?budget env (Poly.sub p q) with
  | Some c -> Rat.sign c >= 0
  | None -> false

(** Prove [p > q] over [env].  For integral polynomials [p > q] is also
    tried as [p >= q + 1]. *)
let prove_gt ?fuel ?budget env p q =
  let d = Poly.sub p q in
  match lower_const ?fuel ?budget env d with
  | Some c ->
    Rat.sign c > 0
    || (integral_coeffs d && Rat.compare c Rat.one >= 0)
  | None ->
    integral_coeffs d
    &&
    (match lower_const ?fuel ?budget env (Poly.sub d Poly.one) with
    | Some c -> Rat.sign c >= 0
    | None -> false)

let prove_le ?fuel ?budget env p q = prove_ge ?fuel ?budget env q p
let prove_lt ?fuel ?budget env p q = prove_gt ?fuel ?budget env q p

(** Prove [p = q] (canonical equality or zero difference bounds). *)
let prove_eq ?fuel ?budget env p q =
  Poly.equal p q
  || (prove_ge ?fuel ?budget env p q && prove_le ?fuel ?budget env p q)

(** Three-way symbolic comparison when provable. *)
let compare ?fuel ?budget env p q : int option =
  if prove_eq ?fuel ?budget env p q then Some 0
  else if prove_lt ?fuel ?budget env p q then Some (-1)
  else if prove_gt ?fuel ?budget env p q then Some 1
  else None
