(** Memoization tables for the symbolic layer (and the dependence
    driver, which reuses them through this module).

    Three disciplines, in increasing order of care:

    - {!memo}: plain memoization of a pure function.  Sound whenever the
      key determines the result and the result is immutable — e.g.
      [Poly.of_expr], whose input is an immutable expression tree.
    - {!memo_validated}: memoization with a per-entry validity probe,
      for facts derived from mutable IR.  The caller stores enough
      context in the entry to recognize staleness (e.g. [Range_prop]
      stores the physical block it walked and revalidates with [==]).
    - {!memo_budgeted}: memoization of a computation that spends from a
      {!Util.Budget}.  Entries record the step cost of the original
      computation; a hit is taken only when the recorded cost is
      affordable ({!Util.Budget.afford}) and then replays the exact
      spend, so budget exhaustion fires at the same point whether or not
      the cache is warm.  Computations that ran under (or into)
      exhaustion are never cached — they recompute honestly, exactly as
      the uncached compiler would.

    All lookups are gated on {!Util.Cachectl.enabled}; in
    {!Util.Cachectl.debug} mode every hit is cross-checked against a
    fresh computation and {!Util.Cachectl.Debug_mismatch} is raised on
    divergence (the debug recomputation may spend extra budget, so debug
    runs trade exact budget accounting for the stronger check).

    Keys are hashed with the polymorphic [Hashtbl.hash] (bounded depth)
    and compared structurally, which is exact for the key shapes used
    here: strings, ints, polynomials over {!Util.Rat} (normalized
    records) and range environments. *)

open Util

type ('k, 'v) t = {
  table : ('k, 'v) Hashtbl.t;
  stats : Cachectl.stats;
  equal_result : 'v -> 'v -> bool;
}

(** [create ~name ()] registers a cache with {!Util.Cachectl} under
    [name].  [equal_result] (default structural [=]) is only used by the
    debug cross-check. *)
let create ~name ?(equal_result = fun a b -> a = b) () =
  let table = Hashtbl.create 1024 in
  let stats =
    Cachectl.register ~name ~clear:(fun () -> Hashtbl.reset table)
  in
  { table; stats; equal_result }

let check_debug c v compute =
  if !Cachectl.debug then begin
    let fresh = compute () in
    if not (c.equal_result v fresh) then
      raise (Cachectl.Debug_mismatch c.stats.Cachectl.cs_name)
  end

let memo c key compute =
  if not !Cachectl.enabled then compute ()
  else
    match Hashtbl.find_opt c.table key with
    | Some v ->
      Cachectl.hit c.stats;
      check_debug c v compute;
      v
    | None ->
      Cachectl.miss c.stats;
      let v = compute () in
      Hashtbl.add c.table key v;
      v

(** [memo_validated c key ~valid compute]: like {!memo}, but an entry is
    only served while [valid entry] holds; an invalid entry is replaced
    by a fresh computation (counted as a miss). *)
let memo_validated c key ~valid compute =
  if not !Cachectl.enabled then compute ()
  else
    match Hashtbl.find_opt c.table key with
    | Some v when valid v ->
      Cachectl.hit c.stats;
      check_debug c v compute;
      v
    | _ ->
      Cachectl.miss c.stats;
      let v = compute () in
      Hashtbl.replace c.table key v;
      v

(** [memo_budgeted c ~budget key compute]: entries are
    [(value, steps)].  See the module comment for the replay
    discipline. *)
let memo_budgeted c ~(budget : Budget.t) key compute =
  if not !Cachectl.enabled then compute ()
  else
    match Hashtbl.find_opt c.table key with
    | Some (v, steps) when Budget.afford budget steps ->
      ignore (Budget.spend budget steps : bool);
      Cachectl.hit c.stats;
      if !Cachectl.debug then begin
        let fresh = compute () in
        if not (c.equal_result (v, steps) (fresh, steps)) then
          raise (Cachectl.Debug_mismatch c.stats.Cachectl.cs_name)
      end;
      v
    | Some _ ->
      (* Recorded cost unaffordable: the uncached compiler would starve
         mid-computation, so run it and let it starve the same way. *)
      compute ()
    | None ->
      Cachectl.miss c.stats;
      let used0 = Budget.used budget in
      let exhausted0 = Budget.exhausted budget in
      let v = compute () in
      if (not exhausted0) && not (Budget.exhausted budget) then
        Hashtbl.add c.table key (v, Budget.used budget - used0);
      v
