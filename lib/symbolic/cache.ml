(** Memoization tables for the symbolic layer (and the dependence
    driver, which reuses them through this module).

    Three disciplines, in increasing order of care:

    - {!memo}: plain memoization of a pure function.  Sound whenever the
      key determines the result and the result is immutable — e.g.
      [Poly.of_expr], whose input is an immutable expression tree.
    - {!memo_validated}: memoization with a per-entry validity probe,
      for facts derived from mutable IR.  The caller stores enough
      context in the entry to recognize staleness (e.g. [Range_prop]
      pins the physical block it walked and revalidates with [==]).
    - {!memo_budgeted}: memoization of a computation that spends from a
      {!Util.Budget}.  Entries record the step cost of the original
      computation; a hit is taken only when the recorded cost is
      affordable ({!Util.Budget.afford}) and then replays the exact
      spend, so budget exhaustion fires at the same point whether or not
      the cache is warm.  Computations that ran under (or into)
      exhaustion are never cached — they recompute honestly, exactly as
      the uncached compiler would.

    {b Domain safety.}  During a parallel phase ({!Util.Pool.map}, or
    the daemon's pinned compile workers) the shared table is treated as
    {e read-only}: a task (identified by its {!Util.Pool.slot}) records
    misses in a private per-slot shard table and looks keys up
    {e shard-first}, falling back to the read-mostly shared tier.  When
    the batch ends the pool calls {!Util.Cachectl.merge_shards} at a
    sequential point and the shards are promoted into the shared store
    ([Hashtbl.replace]: a shard entry supersedes a shared one — values
    for equal keys are equal by the purity discipline, and validated
    caches prefer the fresher entry; either way the choice is
    invisible).  The only cross-domain nondeterminism is {e which}
    lookups hit — and hits and misses yield identical values and
    identical budget decisions, so only wall time can differ.

    All lookups are gated on {!Util.Cachectl.enabled}; in
    {!Util.Cachectl.debug} mode every hit is cross-checked against a
    fresh computation and {!Util.Cachectl.Debug_mismatch} is raised on
    divergence (the debug recomputation may spend extra budget, so debug
    runs trade exact budget accounting for the stronger check).

    Keys are hashed with the polymorphic [Hashtbl.hash] (bounded depth)
    and compared structurally, which is exact for the key shapes used
    here: strings, ints, polynomials over {!Util.Rat} (normalized
    records) and range environments. *)

open Util

type ('k, 'v) t = {
  name : string;
  table : ('k, 'v) Hashtbl.t;
      (** shared store; read-only while a parallel phase is running *)
  shards : ('k, 'v) Hashtbl.t option array;
      (** per-{!Util.Pool.slot} miss tables, created on demand during a
          phase and drained by the registered merge hook *)
  stats : Cachectl.stats;
  equal_result : 'v -> 'v -> bool;
  persist : bool;
      (** entries are content-addressed pure data: mirror them in the
          {!Util.Cachectl.backing} store when one is installed *)
}

(** [create ~name ()] registers a cache with {!Util.Cachectl} under
    [name].  [equal_result] (default structural [=]) is only used by the
    debug cross-check.  [persist] declares every entry a pure function
    of a content-addressed key (no physical pointers, no validity
    probe), so the entry may be spilled to a backing store and reloaded
    by a {e different process} — only caches whose keys fingerprint the
    IR content qualify. *)
let create ~name ?(persist = false) ?(equal_result = fun a b -> a = b) () =
  let table = Hashtbl.create 1024 in
  let shards = Array.make Pool.max_jobs None in
  let clear_shards () = Array.fill shards 0 (Array.length shards) None in
  let merge () =
    Array.iter
      (function
        | None -> ()
        | Some sh -> Hashtbl.iter (fun k v -> Hashtbl.replace table k v) sh)
      shards;
    clear_shards ()
  in
  let stats =
    Cachectl.register ~name ~merge ~persist
      ~clear:(fun () ->
        Hashtbl.reset table;
        clear_shards ())
      ()
  in
  { name; table; shards; stats; equal_result; persist }

(* shard table of the current task's slot, created on first write.
   Only ever touched from that slot's domain while the phase runs, and
   from the submitting domain at the merge point — never concurrently. *)
let shard c i =
  match c.shards.(i) with
  | Some t -> t
  | None ->
    let t = Hashtbl.create 64 in
    c.shards.(i) <- Some t;
    t

(* Canonical key bytes for the backing store.  [No_sharing] expands
   shared subtrees, so two structurally equal keys — e.g. an interned
   and a non-interned expression — marshal to identical bytes and hit
   the same entry.  All key shapes here are acyclic pure data. *)
let key_bytes key = Marshal.to_string key [ Marshal.No_sharing ]

(* Consult the process-wide backing store (daemon persistence).  A hit
   is promoted into this process's table — or, mid-parallel-phase, into
   the task's shard, since the shared table is read-only then — so the
   deserialization cost is paid once per key per process.  Bytes in the
   store were written by this same binary for this same cache name
   (enforced by the store's integrity header), so the unmarshal is
   type-correct; a truncated payload raises and is treated as a miss. *)
let backing_find c key =
  if not c.persist then None
  else
    match !Cachectl.backing with
    | None -> None
    | Some bk -> (
      match bk.Cachectl.bk_lookup ~name:c.name ~key:(key_bytes key) with
      | None -> None
      | Some data -> (
        match (Marshal.from_string data 0 : 'v) with
        | v ->
          (match Pool.slot () with
          | None -> Hashtbl.replace c.table key v
          | Some i -> Hashtbl.replace (shard c i) key v);
          Some v
        | exception _ -> None))

(* Shard-first: a slotted task consults its private shard before the
   shared tier.  The shard holds exactly what this slot wrote since the
   last merge — the hottest entries for the work it is doing — and for
   validated caches it holds the {e fresh} recomputation of any entry
   whose shared copy went stale (shared-first would re-fail the stale
   entry's probe on every lookup and recompute forever within the
   phase).  The shared tier is the read-mostly second level, promoted
   from the shards at batch boundaries. *)
let find_opt c key =
  let shared () =
    match Hashtbl.find_opt c.table key with
    | Some _ as r -> r
    | None -> backing_find c key
  in
  match Pool.slot () with
  | None -> shared ()
  | Some i -> (
    match
      match c.shards.(i) with
      | Some t -> Hashtbl.find_opt t key
      | None -> None
    with
    | Some _ as r -> r
    | None -> shared ())

(* write-through: a freshly computed entry of a persistent cache is
   mirrored to the backing store (the store serializes internally and
   is domain-safe, so this is sound from worker tasks too) *)
let backing_insert c key v =
  if c.persist then
    match !Cachectl.backing with
    | None -> ()
    | Some bk ->
      bk.Cachectl.bk_insert ~name:c.name ~key:(key_bytes key)
        ~data:(Marshal.to_string v [])

let store add_or_replace c key v =
  (match Pool.slot () with
  | None -> add_or_replace c.table key v
  | Some i -> add_or_replace (shard c i) key v);
  backing_insert c key v

let add c key v = store Hashtbl.add c key v
let replace c key v = store Hashtbl.replace c key v

let check_debug c v compute =
  if !Cachectl.debug then begin
    let fresh = compute () in
    if not (c.equal_result v fresh) then
      raise (Cachectl.Debug_mismatch c.stats.Cachectl.cs_name)
  end

let memo c key compute =
  if not !Cachectl.enabled then compute ()
  else
    match find_opt c key with
    | Some v ->
      Cachectl.hit c.stats;
      check_debug c v compute;
      v
    | None ->
      Cachectl.miss c.stats;
      let v = compute () in
      add c key v;
      v

(** [memo_validated c key ~valid compute]: like {!memo}, but an entry is
    only served while [valid entry] holds; an invalid entry is replaced
    by a fresh computation (counted as a miss). *)
let memo_validated c key ~valid compute =
  if not !Cachectl.enabled then compute ()
  else
    match find_opt c key with
    | Some v when valid v ->
      Cachectl.hit c.stats;
      check_debug c v compute;
      v
    | _ ->
      Cachectl.miss c.stats;
      let v = compute () in
      replace c key v;
      v

(** [memo_budgeted c ~budget key compute]: entries are
    [(value, steps)].  See the module comment for the replay
    discipline. *)
let memo_budgeted c ~(budget : Budget.t) key compute =
  if not !Cachectl.enabled then compute ()
  else
    match find_opt c key with
    | Some (v, steps) when Budget.afford budget steps ->
      ignore (Budget.spend budget steps : bool);
      Cachectl.hit c.stats;
      if !Cachectl.debug then begin
        let fresh = compute () in
        if not (c.equal_result (v, steps) (fresh, steps)) then
          raise (Cachectl.Debug_mismatch c.stats.Cachectl.cs_name)
      end;
      v
    | Some _ ->
      (* Recorded cost unaffordable: the uncached compiler would starve
         mid-computation, so run it and let it starve the same way. *)
      compute ()
    | None ->
      Cachectl.miss c.stats;
      let used0 = Budget.used budget in
      let exhausted0 = Budget.exhausted budget in
      let v = compute () in
      if (not exhausted0) && not (Budget.exhausted budget) then
        add c key (v, Budget.used budget - used0);
      v
