(** Canonical multivariate polynomials with rational coefficients.

    Sum-of-products form over {!Atom}: a polynomial is a sorted
    association list from monomials to non-zero rational coefficients; a
    monomial is a sorted list of (atom, positive exponent) pairs.  The
    representation is canonical, so structural equality decides symbolic
    equality of polynomials.

    All symbolic reasoning in the reproduction (range test monotonicity,
    induction closed forms, region subset proofs) happens here.  Integer
    division by a constant is treated as exact rational scaling when
    converting expressions; this matches the closed forms Polaris
    generates (which are integer-valued by construction, e.g. the
    [(N**2+N)/2] of TRFD) and is the documented assumption of the
    symbolic layer (DESIGN.md §5). *)

open Util

type mono = (Atom.t * int) list
(** sorted by atom, exponents >= 1; [] is the constant monomial *)

type t = (mono * Rat.t) list
(** sorted by monomial (Stdlib.compare), coefficients non-zero *)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let zero : t = []
let const (c : Rat.t) : t = if Rat.is_zero c then [] else [ ([], c) ]
let of_int n = const (Rat.of_int n)
let one = of_int 1

let of_atom a : t = [ ([ (a, 1) ], Rat.one) ]
let var name = of_atom (Atom.var name)

let compare_mono (a : mono) (b : mono) = Stdlib.compare a b

let normalize (terms : (mono * Rat.t) list) : t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (m, c) ->
      let prev = Option.value ~default:Rat.zero (Hashtbl.find_opt tbl m) in
      Hashtbl.replace tbl m (Rat.add prev c))
    terms;
  Hashtbl.fold (fun m c acc -> if Rat.is_zero c then acc else (m, c) :: acc) tbl []
  |> List.sort (fun (m1, _) (m2, _) -> compare_mono m1 m2)

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)

let add (p : t) (q : t) : t = normalize (p @ q)
let scale (c : Rat.t) (p : t) : t =
  if Rat.is_zero c then [] else List.map (fun (m, k) -> (m, Rat.mul c k)) p
let neg p = scale Rat.minus_one p
let sub p q = add p (neg q)

let mul_mono (a : mono) (b : mono) : mono =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (at, e) ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt tbl at) in
      Hashtbl.replace tbl at (prev + e))
    (a @ b);
  Hashtbl.fold (fun at e acc -> (at, e) :: acc) tbl []
  |> List.sort (fun (a1, _) (a2, _) -> Atom.compare a1 a2)

let mul (p : t) (q : t) : t =
  normalize
    (List.concat_map (fun (m1, c1) -> List.map (fun (m2, c2) -> (mul_mono m1 m2, Rat.mul c1 c2)) q) p)

let rec pow p n =
  if n <= 0 then one
  else if n = 1 then p
  else
    let h = pow p (n / 2) in
    let h2 = mul h h in
    if n mod 2 = 0 then h2 else mul h2 p

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let is_zero (p : t) = p = []

let const_val (p : t) : Rat.t option =
  match p with
  | [] -> Some Rat.zero
  | [ ([], c) ] -> Some c
  | _ -> None

let is_const p = Option.is_some (const_val p)

let equal (p : t) (q : t) = p = q

(** All atoms occurring in [p]. *)
let atoms (p : t) : Atom.t list =
  List.concat_map (fun (m, _) -> List.map fst m) p
  |> List.sort_uniq Atom.compare

let contains_atom a p = List.exists (Atom.equal a) (atoms p)

(** Degree of [p] in atom [a]. *)
let degree a (p : t) =
  List.fold_left
    (fun acc (m, _) ->
      match List.assoc_opt a m with Some e -> max acc e | None -> acc)
    0 p

(** Does any atom of [p] mention scalar variable [name]?  (Including
    inside opaque atoms.) *)
let mentions_var name p = List.exists (Atom.mentions name) (atoms p)

(** Coefficient polynomials of [p] viewed as a univariate polynomial in
    [a]: returns [(k, q_k)] such that [p = sum q_k * a^k]. *)
let coeffs_in a (p : t) : (int * t) list =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (m, c) ->
      let e = Option.value ~default:0 (List.assoc_opt a m) in
      let m' = List.filter (fun (at, _) -> not (Atom.equal at a)) m in
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl e) in
      Hashtbl.replace tbl e ((m', c) :: prev))
    p;
  Hashtbl.fold (fun e terms acc -> (e, normalize terms) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Substitution and evaluation                                         *)

(** [subst a q p] replaces atom [a] by polynomial [q] in [p]. *)
let subst (a : Atom.t) (q : t) (p : t) : t =
  List.fold_left
    (fun acc (m, c) ->
      let term =
        List.fold_left
          (fun acc (at, e) ->
            if Atom.equal at a then mul acc (pow q e)
            else mul acc (pow (of_atom at) e))
          (const c) m
      in
      add acc term)
    zero p

(** Evaluate with an assignment of rationals to atoms; [None] if some
    atom is unassigned. *)
let eval (lookup : Atom.t -> Rat.t option) (p : t) : Rat.t option =
  List.fold_left
    (fun acc (m, c) ->
      match acc with
      | None -> None
      | Some total ->
        let term =
          List.fold_left
            (fun acc (at, e) ->
              match (acc, lookup at) with
              | Some v, Some x ->
                let rec powr b n = if n <= 0 then Rat.one else Rat.mul b (powr b (n - 1)) in
                Some (Rat.mul v (powr x e))
              | _ -> None)
            (Some c) m
        in
        (match term with Some t -> Some (Rat.add total t) | None -> None))
    (Some Rat.zero) p

(* ------------------------------------------------------------------ *)
(* Conversion from / to expressions                                    *)

open Fir

let of_expr_cache : (Ast.expr, t) Cache.t =
  Cache.create ~name:"poly.of_expr" ~persist:true ()

(** Translate an expression to a polynomial.  Non-polynomial structure
    (array elements, calls, symbolic powers, division by a non-constant)
    becomes an opaque atom.  Integer division by a constant becomes exact
    rational scaling (see module doc).  Logical/relational expressions
    and non-integral reals yield a fully opaque polynomial.

    Memoized at every recursion level: expressions are immutable (and,
    with caches on, hash-consed by the parser), so the translation of a
    shared subtree is computed once per process. *)
let rec of_expr (e : Ast.expr) : t =
  Cache.memo of_expr_cache e (fun () -> of_expr_raw e)

and of_expr_raw (e : Ast.expr) : t =
  match e with
  | Ast.Int_lit n -> of_int n
  | Ast.Real_lit x when Float.is_integer x && Float.abs x < 1e15 ->
    of_int (int_of_float x)
  | Ast.Var v -> var v
  | Ast.Unary (Neg, a) -> neg (of_expr a)
  | Ast.Binary (Add, a, b) -> add (of_expr a) (of_expr b)
  | Ast.Binary (Sub, a, b) -> sub (of_expr a) (of_expr b)
  | Ast.Binary (Mul, a, b) -> mul (of_expr a) (of_expr b)
  | Ast.Binary (Div, a, b) -> (
    match const_val (of_expr b) with
    | Some c when not (Rat.is_zero c) -> scale (Rat.div Rat.one c) (of_expr a)
    | _ -> of_atom (Atom.opaque e))
  | Ast.Binary (Pow, a, b) -> (
    match const_val (of_expr b) with
    | Some c when Rat.is_integer c && Rat.to_int c >= 0 && Rat.to_int c <= 8 ->
      pow (of_expr a) (Rat.to_int c)
    | _ -> of_atom (Atom.opaque e))
  | Ast.Real_lit _ | Ast.Logical_lit _ | Ast.Char_lit _ | Ast.Wildcard _
  | Ast.Ref _ | Ast.Fun_call _ | Ast.Unary (Not, _)
  | Ast.Binary ((And | Or | Eq | Ne | Lt | Le | Gt | Ge), _, _) ->
    of_atom (Atom.opaque e)

(** Render back to an expression.  If coefficients have a common
    denominator D > 1 the result is [(...)/D] with integer coefficients,
    regenerating the familiar [(N**2+N)/2] shapes. *)
let to_expr (p : t) : Ast.expr =
  let lcm a b = a / Rat.gcd a b * b in
  let denom = List.fold_left (fun acc (_, c) -> lcm acc (Rat.den c)) 1 p in
  let scaled = scale (Rat.of_int denom) p in
  let mono_expr (m, c) =
    let c = Rat.to_int c in
    let factors =
      List.concat_map
        (fun (at, e) -> List.init e (fun _ -> Atom.to_expr at))
        m
    in
    let base =
      match factors with
      | [] -> Ast.Int_lit (abs c)
      | f :: tl ->
        let prod = List.fold_left (fun acc x -> Ast.Binary (Mul, acc, x)) f tl in
        if abs c = 1 then prod else Ast.Binary (Mul, Ast.Int_lit (abs c), prod)
    in
    (c < 0, base)
  in
  let body =
    match scaled with
    | [] -> Ast.Int_lit 0
    | first :: rest ->
      let neg0, e0 = mono_expr first in
      let start = if neg0 then Ast.Unary (Neg, e0) else e0 in
      List.fold_left
        (fun acc term ->
          let isneg, e = mono_expr term in
          if isneg then Ast.Binary (Sub, acc, e) else Ast.Binary (Add, acc, e))
        start rest
  in
  let e = if denom = 1 then body else Ast.Binary (Div, body, Ast.Int_lit denom) in
  Expr.simplify e

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let pp ppf (p : t) =
  if p = [] then Fmt.string ppf "0"
  else
    let mono_str (m, c) =
      let atoms =
        List.map
          (fun (a, e) ->
            if e = 1 then Atom.to_string a else Fmt.str "%s^%d" (Atom.to_string a) e)
          m
      in
      match (atoms, Rat.equal c Rat.one, Rat.equal c Rat.minus_one) with
      | [], _, _ -> Rat.to_string c
      | _, true, _ -> String.concat "*" atoms
      | _, _, true -> "-" ^ String.concat "*" atoms
      | _ -> Rat.to_string c ^ "*" ^ String.concat "*" atoms
    in
    Fmt.string ppf (String.concat " + " (List.map mono_str p))

let to_string p = Fmt.str "%a" pp p
