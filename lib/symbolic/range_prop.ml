(** Control-flow range propagation (paper §3.3.1).

    Determines symbolic lower/upper bounds for variables at a program
    point by walking the structured AST from the unit entry to the
    point, collecting facts from DO headers (index within bounds, loop
    non-empty), IF guards, and simple assignments, and killing facts
    invalidated by assignments and calls.

    This is a deliberately one-pass, kill-based analysis: a variable
    assigned inside a region loses its range unless re-established, so
    no fixpoint iteration is required while soundness is preserved. *)

open Fir
open Ast

(* ------------------------------------------------------------------ *)
(* Facts from relational expressions                                   *)

(* [assume_nonneg env f]: record the fact [f >= 0] by refining the
   interval of every atom occurring linearly in [f] with a constant
   coefficient. *)
let assume_nonneg (env : Range.env) (f : Poly.t) : Range.env =
  List.fold_left
    (fun env a ->
      if Poly.degree a f <> 1 then env
      else
        match Poly.coeffs_in a f with
        | ([ (0, _); (1, c) ] | [ (1, c) ]) when Poly.is_const c -> (
          let rest =
            match Poly.coeffs_in a f with
            | [ (0, r); (1, _) ] -> r
            | _ -> Poly.zero
          in
          match Poly.const_val c with
          | Some c when Util.Rat.sign c > 0 ->
            (* c*a + rest >= 0  =>  a >= -rest/c *)
            let bound = Poly.scale (Util.Rat.div Util.Rat.minus_one c) rest in
            if Poly.contains_atom a bound then env
            else Range.refine env a (Range.at_least bound)
          | Some c when Util.Rat.sign c < 0 ->
            let bound = Poly.scale (Util.Rat.div Util.Rat.minus_one c) rest in
            if Poly.contains_atom a bound then env
            else Range.refine env a (Range.at_most bound)
          | _ -> env)
        | _ -> env)
    env (Poly.atoms f)

(* integer-typed test used to sharpen strict inequalities; consults the
   symbol table when available, implicit naming otherwise *)
let is_integer_expr (symtab : Symtab.t option) (e : expr) =
  let names = Expr.all_names e in
  List.for_all
    (fun n ->
      match symtab with
      | Some st -> Symtab.type_of st n = Integer
      | None -> Symtab.implicit_type n = Integer)
    names

(** Facts implied by the truth of condition [cond]. *)
let rec assume_cond ?symtab (env : Range.env) (cond : expr) : Range.env =
  match cond with
  | Binary (And, a, b) -> assume_cond ?symtab (assume_cond ?symtab env a) b
  | Binary (((Le | Lt | Ge | Gt | Eq) as op), a, b) -> (
    let pa = Poly.of_expr a and pb = Poly.of_expr b in
    let strictable = is_integer_expr symtab a && is_integer_expr symtab b in
    let nonneg f = assume_nonneg env f in
    match op with
    | Le -> nonneg (Poly.sub pb pa)
    | Ge -> nonneg (Poly.sub pa pb)
    | Lt ->
      let d = Poly.sub pb pa in
      nonneg (if strictable then Poly.sub d Poly.one else d)
    | Gt ->
      let d = Poly.sub pa pb in
      nonneg (if strictable then Poly.sub d Poly.one else d)
    | Eq -> assume_nonneg (assume_nonneg env (Poly.sub pa pb)) (Poly.sub pb pa)
    | _ -> env)
  | _ -> env

(** Facts implied by the falsity of [cond] (negation of simple tests). *)
let assume_not_cond ?symtab (env : Range.env) (cond : expr) : Range.env =
  let negated =
    match cond with
    | Binary (Lt, a, b) -> Some (Binary (Ge, a, b))
    | Binary (Le, a, b) -> Some (Binary (Gt, a, b))
    | Binary (Gt, a, b) -> Some (Binary (Le, a, b))
    | Binary (Ge, a, b) -> Some (Binary (Lt, a, b))
    | Binary (Ne, a, b) -> Some (Binary (Eq, a, b))
    | Unary (Not, c) -> Some c
    | _ -> None
  in
  match negated with
  | Some c -> assume_cond ?symtab env c
  | None -> env

(* ------------------------------------------------------------------ *)
(* Effects of statements on the environment                            *)

let kill_names env names = List.fold_left Range.kill_var env names

(** Environment facts for executing inside loop [d]'s body: every name
    assigned in the body is killed, then the index interval and the
    loop-non-emptiness fact are pushed (sound: the body only runs when
    the trip count is positive). *)
let enter_loop ?symtab:_ (env : Range.env) (d : do_loop) : Range.env =
  let assigned = Stmt.assigned_names d.body in
  let env = kill_names env (d.index :: assigned) in
  let lo = Poly.of_expr d.init and hi = Poly.of_expr d.limit in
  let step = match d.step with Some e -> Expr.int_val e | None -> Some 1 in
  match step with
  | Some s when s > 0 ->
    let env = Range.refine env (Atom.var d.index) (Range.between lo hi) in
    assume_nonneg env (Poly.sub hi lo)
  | Some s when s < 0 ->
    let env = Range.refine env (Atom.var d.index) (Range.between hi lo) in
    assume_nonneg env (Poly.sub lo hi)
  | _ -> env

let exit_loop (env : Range.env) (d : do_loop) : Range.env =
  kill_names env (d.index :: Stmt.assigned_names d.body)

(* conservative effect of one statement executed to completion *)
let after_stmt ?symtab (env : Range.env) (s : stmt) : Range.env =
  match s.kind with
  | Assign (Var v, rhs) ->
    let env = Range.kill_var env v in
    let p = Poly.of_expr rhs in
    if Poly.mentions_var (Symtab.norm v) p then env
    else Range.refine env (Atom.var v) (Range.exact p)
  | Assign (Ref (v, _), _) -> Range.kill_var env v
  | Assign (_, _) -> env
  | If (_, t, e) -> kill_names env (Stmt.assigned_names t @ Stmt.assigned_names e)
  | Do d -> exit_loop env d
  | While (_, b) -> kill_names env (Stmt.assigned_names b)
  | Call (_, args) ->
    (* by-reference arguments and commons may change *)
    let arg_names = List.concat_map Expr.all_names args in
    let commons =
      match symtab with
      | Some st ->
        Symtab.fold
          (fun n sym acc -> if sym.sym_common <> None then n :: acc else acc)
          st []
      | None -> []
    in
    kill_names env (arg_names @ commons)
  | Goto _ -> []  (* unstructured flow: drop everything, stay sound *)
  | Continue | Return | Stop | Print _ -> env

(* ------------------------------------------------------------------ *)
(* Environment at a program point                                      *)

exception Found of Range.env

(* walk a block; raise [Found] when reaching the statement with id
   [target].  The environment delivered for a Do target is the one
   holding *inside* its body (index bounds included). *)
let rec walk ?symtab (env : Range.env) (b : block) ~target =
  ignore
    (List.fold_left
       (fun env s ->
         (* labeled statements may be backward-GOTO targets *)
         let env = if s.label = None then env else Range.empty in
         if s.sid = target then begin
           match s.kind with
           | Do d -> raise (Found (enter_loop ?symtab env d))
           | _ -> raise (Found env)
         end;
         (match s.kind with
         | If (c, t, e) ->
           walk ?symtab (assume_cond ?symtab env c) t ~target;
           walk ?symtab (assume_not_cond ?symtab env c) e ~target
         | Do d -> walk ?symtab (enter_loop ?symtab env d) d.body ~target
         | While (c, body) ->
           let env' =
             kill_names (assume_cond ?symtab env c) (Stmt.assigned_names body)
           in
           walk ?symtab env' body ~target
         | _ -> ());
         after_stmt ?symtab env s)
       env b)

(** Environment of facts known on entry of the unit: PARAMETER constants
    pinned to their values. *)
let initial_env (u : Punit.t) : Range.env =
  List.fold_left
    (fun env (name, value) ->
      let p = Poly.of_expr value in
      Range.refine env (Atom.var name) (Range.exact p))
    Range.empty (Punit.parameter_bindings u)

(* Each derivation walks the whole unit body, and the parallelizer asks
   once per loop nest, so the walk is quadratic in program size.

   The cache is content-addressed: the key is the unit's canonical
   {!Fir.Punit.fingerprint} (symbol table + body, statement ids and
   loop decisions excluded) plus the {e preorder ordinal} of the target
   statement.  The fingerprint determines the walk and the ordinal
   determines the stopping point, so the entry is valid by construction
   — no generation tag, no staleness probe — and, crucially, the key
   {e recurs}: recompiling the same source (or re-analyzing an
   untouched unit in a later pass) reuses the entry even though every
   statement id is fresh.  The previous key — (generation, unit, sid) —
   could never be re-hit precisely because ids are globally fresh and
   the generation bumps after every pass: 0 hits in 710 lookups on the
   benchmark suite.

   The fingerprint itself is O(unit) to build but now memoized inside
   the unit record, invalidated by [Program.touch] — see
   {!Fir.Punit.fingerprint} — so the per-module fingerprint cache this
   file used to carry is gone. *)

(* preorder position of the statement with id [target] (-1 if absent):
   the sid-free coordinate of a program point within a fingerprint *)
let ordinal_of (u : Punit.t) ~(target : int) : int =
  let i = ref 0 and found = ref (-1) in
  Stmt.iter
    (fun s ->
      if !found < 0 && s.sid = target then found := !i;
      incr i)
    u.pu_body;
  !found

let env_cache : (string * int, Range.env) Cache.t =
  Cache.create ~name:"range_prop.env_at" ~persist:true ()

(** Range environment holding at statement [target] (by statement id)
    of unit [u]; for a DO statement this is the environment inside its
    body.  Returns the entry environment if the statement is not found. *)
let env_at (u : Punit.t) ~(target : int) : Range.env =
  let compute () =
    let symtab = u.pu_symtab in
    match walk ~symtab (initial_env u) u.pu_body ~target with
    | () -> initial_env u
    | exception Found env -> env
  in
  if not !Util.Cachectl.enabled then compute ()
  else
    Cache.memo env_cache
      (Punit.fingerprint u, ordinal_of u ~target)
      compute
