(** The polaris command-line driver.

    - [polaris compile FILE]: parse, restructure, print the annotated
      parallel Fortran source (CPOLARIS$ directives) and the per-loop
      report.
    - [polaris run FILE]: compile and simulate on a p-processor machine,
      reporting serial/parallel simulated time and speedup.
    - [polaris suite [NAME]]: list the evaluation suite, or compile+run
      one of its codes under both pipelines.
    - [polaris validate FILE | --suite]: translation validation — run
      the pass pipeline with the per-pass snapshot oracle attached and
      differentially execute every intermediate program against the
      original; non-zero exit on any divergence.
    - [polaris serve FILE...]: incremental recompilation — compile a
      sequence of sources (edit deltas) in one process, reusing every
      analysis whose program unit is unchanged; [--check] compares each
      compile against a from-scratch one.
    - [polaris daemon]: the long-lived compile server — multiple client
      sessions over a unix-domain socket share one analysis store,
      persistent on disk under \$POLARIS_CACHE_DIR.
    - [polaris client FILE...]: compile files on a running daemon. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* user-facing failures print one clean line and exit 1; backtraces are
   for bugs in the compiler, not for bad inputs *)
let with_errors f =
  try f () with
  | Sys_error m ->
    Fmt.epr "polaris: %s@." m;
    exit 1
  | Frontend.Lexer.Error m ->
    Fmt.epr "polaris: lexical error: %s@." m;
    exit 1
  | Frontend.Parser.Error m ->
    Fmt.epr "polaris: syntax error: %s@." m;
    exit 1
  | Fir.Consistency.Violation m ->
    Fmt.epr "polaris: IR consistency violation: %s@." m;
    exit 1
  | Machine.Interp.Runtime_error m ->
    Fmt.epr "polaris: runtime error: %s@." m;
    exit 1
  | Machine.Interp.Fuel_exhausted m ->
    Fmt.epr "polaris: execution fuel exhausted %s@." m;
    exit 1
  | Machine.Storage.Fault m ->
    Fmt.epr "polaris: storage fault: %s@." m;
    exit 1
  | Core.Simulate.Output_mismatch ->
    Fmt.epr "polaris: internal error: serial/parallel output mismatch@.";
    exit 1
  | Serve.Daemon.Already_running (pid, sock) ->
    Fmt.epr
      "polaris: a daemon (pid %d) already owns %s; use `polaris client \
       --shutdown' to stop it@."
      pid sock;
    exit 1

let config_of ~baseline ~procs =
  if baseline then Core.Config.baseline ~procs ()
  else Core.Config.polaris ~procs ()

(* ----- pass-pipeline and emission-backend selection -----

   Both registries are first-class tables: --pipeline resolves against
   Core.Registry (presets + custom:p1,p2,... with ordering constraints
   checked), --emit-backend against Backend.Registry.  A bad flag value
   is a hard error (exit 1); a bad environment value was already warned
   about and dropped by Util.Env's validated parsers, and an
   env-supplied name that fails registry resolution degrades to the
   default with a warning — the environment must never turn a working
   invocation into a failing one. *)

let pipeline_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "pipeline" ] ~docv:"SPEC"
        ~doc:
          "Pass pipeline to run: a preset ($(b,thorough), $(b,fast), \
           $(b,serial)) or $(b,custom:)$(i,P1,P2,..) over registered pass \
           names (see $(b,polaris list-passes)).  Unknown passes and \
           orderings that violate a registered constraint are refused.  \
           Default \\$(b,POLARIS_PIPELINE), or the thorough preset.")

let resolve_pipeline (flag : string option) : Core.Registry.pipeline option =
  match flag with
  | Some spec -> (
    match Core.Registry.parse spec with
    | Ok pl -> Some pl
    | Error m ->
      Fmt.epr "polaris: --pipeline: %s@." m;
      exit 1)
  | None -> (
    match Util.Env.pipeline with
    | None -> None
    | Some spec -> (
      match Core.Registry.parse spec with
      | Ok pl -> Some pl
      | Error m ->
        Fmt.epr "polaris: warning: POLARIS_PIPELINE ignored: %s@." m;
        None))

let apply_pipeline (pl : Core.Registry.pipeline option) (c : Core.Config.t) :
    Core.Config.t =
  match pl with Some pl -> Core.Config.with_pipeline pl c | None -> c

let backend_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-backend" ] ~docv:"NAME"
        ~doc:
          "Emission backend for the transformed source: $(b,f77) (the \
           default round-tripping unparser), $(b,f77-omp) (!\\$OMP \
           directives from the compiler's verdicts) or $(b,c) (portable C \
           with OpenMP pragmas); see $(b,polaris list-backends).  Default \
           \\$(b,POLARIS_BACKEND), or f77.")

let resolve_backend (flag : string option) : Backend.Registry.t =
  match flag with
  | Some name -> (
    match Backend.Registry.find name with
    | Ok b -> b
    | Error m ->
      Fmt.epr "polaris: --emit-backend: %s@." m;
      exit 1)
  | None -> (
    match Util.Env.backend with
    | None -> Backend.Registry.default
    | Some name -> (
      match Backend.Registry.find name with
      | Ok b -> b
      | Error m ->
        Fmt.epr "polaris: warning: POLARIS_BACKEND ignored: %s@." m;
        Backend.Registry.default))

let strict_flag =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Disable fault containment: re-raise the first pass fault instead \
           of rolling the pass back (debugging)")

(* -j/--jobs on every command; the default comes from POLARIS_JOBS (or 1).
   Output is byte-identical at any job count, so this is purely a
   wall-clock knob. *)
let jobs_flag =
  Arg.(
    value
    & opt int (Util.Pool.jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Compiler worker domains for dependence analysis and validation \
           (default \\$(b,POLARIS_JOBS) or 1).  Output is byte-identical at \
           every N.")

(* --chunk rides along with -j everywhere; both go through the same
   validated Util.Env parses the environment variables use, so a typo
   fails loudly instead of silently degrading the schedule *)
let chunk_conv =
  let parse s =
    match Util.Env.parse_chunk s with
    | Ok n -> Ok n
    | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, Fmt.int)

let chunk_flag =
  Arg.(
    value
    & opt (some chunk_conv) (Util.Pool.chunk ())
    & info [ "chunk" ] ~docv:"N"
        ~doc:
          "Pin the work-stealing pool's batch size to N tasks per chunk \
           (default \\$(b,POLARIS_CHUNK), or unset: the batcher's cost \
           model decides).  A wall-clock knob only: output is \
           byte-identical at every N.")

let setup_pool jobs chunk =
  Util.Pool.set_jobs jobs;
  Util.Pool.set_chunk chunk

(* fail-safe contract: a compilation that contained pass faults still
   produced a correct (possibly less optimized) program, but the caller
   must be able to tell — exit 2, distinct from hard failures (exit 1) *)
let exit_on_incidents (t : Core.Pipeline.t) =
  if t.incidents <> [] then begin
    Fmt.epr "polaris: compiled with %d contained incident(s):@."
      (List.length t.incidents);
    List.iter
      (fun i -> Fmt.epr "  %a@." Core.Pipeline.pp_incident i)
      t.incidents;
    exit 2
  end

let explain_reuse_flag =
  Arg.(
    value & flag
    & info [ "explain-reuse" ]
        ~doc:
          "After compiling, print the per-pass table of analyses consumed, \
           cache entries reused/computed and entries invalidated")

let file_pos =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Fortran source file")

let required_file file =
  match file with
  | Some f -> f
  | None ->
    Fmt.epr "polaris: missing FILE argument@.";
    exit 1

(* ----- compile ----- *)

let compile_cmd =
  let baseline =
    Arg.(value & flag & info [ "baseline" ] ~doc:"Use the baseline (PFA-like) pipeline")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print the transformed source")
  in
  let run file baseline quiet strict jobs chunk explain_reuse pipeline backend
      =
    with_errors (fun () ->
        setup_pool jobs chunk;
        let file = required_file file in
        let config =
          apply_pipeline (resolve_pipeline pipeline)
            (config_of ~baseline ~procs:8)
        in
        let b = resolve_backend backend in
        let t = Core.Pipeline.compile ~strict config (read_file file) in
        if not quiet then Fmt.pr "%a@." Core.Pipeline.pp_summary t;
        if explain_reuse then Fmt.pr "%a" Valid.Trace.pp_reuse_table t.reuse;
        print_string (b.Backend.Registry.b_emit t.program);
        exit_on_incidents t)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Restructure a Fortran program and print it")
    Term.(
      const run $ file_pos $ baseline $ quiet $ strict_flag $ jobs_flag
      $ chunk_flag $ explain_reuse_flag $ pipeline_flag $ backend_flag)

(* ----- run ----- *)

let run_cmd =
  let baseline =
    Arg.(value & flag & info [ "baseline" ] ~doc:"Use the baseline (PFA-like) pipeline")
  in
  let procs =
    Arg.(value & opt int 8 & info [ "p"; "procs" ] ~doc:"Simulated processor count")
  in
  let real =
    Arg.(
      value & flag
      & info [ "real" ]
          ~doc:
            "Also execute the compiled program for real: DOALL and \
             speculative loops run on OCaml domains and both lanes are \
             timed with a wall clock (measured, not modeled)")
  in
  let real_procs =
    Arg.(
      value
      & opt (some int) None
      & info [ "real-procs" ] ~docv:"N"
          ~doc:
            "Domain count for $(b,--real) (default \
             \\$(b,POLARIS_RUNTIME_PROCS), or the host's recommended domain \
             count capped at 8)")
  in
  let go file baseline procs real real_procs strict jobs chunk pipeline =
    with_errors (fun () ->
        setup_pool jobs chunk;
        let file = required_file file in
        let cfg =
          apply_pipeline (resolve_pipeline pipeline) (config_of ~baseline ~procs)
        in
        let t, r = Core.Simulate.compile_and_run ~strict cfg (read_file file) in
        Fmt.pr "%a@." Core.Pipeline.pp_summary t;
        Fmt.pr "serial time   : %d@." r.serial_time;
        Fmt.pr "parallel time : %d (%d processors)@." r.parallel_time procs;
        Fmt.pr "speedup       : %.2fx@." r.speedup;
        if real then begin
          let m = Core.Simulate.run_measured ?procs:real_procs t.program in
          let s = m.stats in
          Fmt.pr
            "real exec     : p=%d  serial %.4fs  parallel %.4fs  speedup \
             %.2fx (measured)@."
            m.m_procs m.serial_wall m.parallel_wall m.wall_speedup;
          Fmt.pr
            "real regions  : %d forked (%d iterations); speculation %d ok / \
             %d failed; %d loops declined@."
            s.Machine.Parexec.regions s.Machine.Parexec.par_iters
            s.Machine.Parexec.spec_success s.Machine.Parexec.spec_failures
            s.Machine.Parexec.serial_loops;
          let divs =
            Valid.Oracle.compare_captures Valid.Oracle.real_cmp
              m.serial_capture m.parallel_capture
          in
          if divs <> [] then begin
            Fmt.epr "polaris: real execution diverged from serial:@.";
            List.iteri
              (fun i d ->
                if i < 5 then Fmt.epr "  %a@." Valid.Oracle.pp_divergence d)
              divs;
            exit 1
          end
        end;
        List.iter (fun l -> Fmt.pr "output: %s@." l) r.output;
        exit_on_incidents t)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute on the simulated multiprocessor")
    Term.(
      const go $ file_pos $ baseline $ procs $ real $ real_procs $ strict_flag
      $ jobs_flag $ chunk_flag $ pipeline_flag)

(* ----- suite ----- *)

let suite_cmd =
  let code_name =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Suite code name")
  in
  let procs =
    Arg.(value & opt int 8 & info [ "p"; "procs" ] ~doc:"Simulated processor count")
  in
  let go code_name procs jobs chunk pipeline =
    with_errors (fun () ->
        setup_pool jobs chunk;
        let pl = resolve_pipeline pipeline in
        match code_name with
        | None ->
          Fmt.pr "%-8s %-8s %s@." "name" "origin" "description";
          List.iter
            (fun (c : Suite.Code.t) ->
              Fmt.pr "%-8s %-8s %s@." c.name
                (Suite.Code.origin_to_string c.origin)
                c.description)
            Suite.Registry.all
        | Some name -> (
          match Suite.Registry.find name with
          | c ->
            let _, rp =
              Core.Simulate.compile_and_run
                (apply_pipeline pl (Core.Config.polaris ~procs ()))
                c.source
            in
            let _, rb =
              Core.Simulate.compile_and_run (Core.Config.baseline ~procs ()) c.source
            in
            Fmt.pr "%s (%s): %s@." c.name
              (Suite.Code.origin_to_string c.origin)
              c.description;
            Fmt.pr "enabling techniques: %s@." (String.concat "; " c.enabling);
            Fmt.pr "polaris : %.2fx   (paper ~%.1fx)@." rp.speedup c.paper_polaris_speedup;
            Fmt.pr "baseline: %.2fx   (paper PFA ~%.1fx)@." rb.speedup c.paper_pfa_speedup
          | exception Not_found ->
            Fmt.epr "unknown code %s; try `polaris suite' for the list@." name;
            exit 1))
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"List or run the evaluation-suite codes")
    Term.(const go $ code_name $ procs $ jobs_flag $ chunk_flag $ pipeline_flag)

(* ----- validate ----- *)

let parse_int_list ~what s =
  if String.trim s = "" then []
  else
    String.split_on_char ',' s
    |> List.map (fun tok ->
           match int_of_string_opt (String.trim tok) with
           | Some n -> n
           | None ->
             Fmt.epr "polaris: bad %s list %S@." what s;
             exit 1)

let checks_of_report (r : Valid.Snapshot.report) =
  List.fold_left
    (fun acc (s : Valid.Snapshot.stage_report) ->
      match s.status with
      | Valid.Snapshot.Ok_validated o | Valid.Snapshot.Diverged o ->
        acc + o.checks
      | _ -> acc)
    0 r.stages

(* validate one source under one config; returns the report *)
let validate_one ~cmp ~procs_list ~seeds ~label (config : Core.Config.t)
    (source : string) : Valid.Snapshot.report =
  let t0 = Sys.time () in
  let _, report =
    Valid.Snapshot.validated_compile ~cmp ~procs_list ~seeds config source
  in
  let dt = Sys.time () -. t0 in
  if Valid.Snapshot.ok report then
    Fmt.pr "%-10s %-9s ok     %2d stages  %4d checks  %6.2fs@." label
      config.name
      (List.length report.stages)
      (checks_of_report report) dt
  else begin
    Fmt.pr "%-10s %-9s FAIL@." label config.name;
    Fmt.pr "@[<v>%a@]@." Valid.Snapshot.pp_report report
  end;
  report

let validate_cmd =
  let suite =
    Arg.(value & flag & info [ "suite" ] ~doc:"Validate all 16 evaluation-suite codes")
  in
  let baseline_only =
    Arg.(value & flag & info [ "baseline" ] ~doc:"Only the baseline pipeline (default: both)")
  in
  let polaris_only =
    Arg.(value & flag & info [ "polaris" ] ~doc:"Only the Polaris pipeline (default: both)")
  in
  let ulp =
    Arg.(value & opt int 2 & info [ "ulp" ] ~doc:"Float tolerance in units-in-the-last-place")
  in
  let seeds =
    Arg.(value & opt string ""
         & info [ "seeds" ] ~docv:"S1,S2"
             ~doc:"Extra splitmix64-seeded initial stores (comma-separated)")
  in
  let procs =
    Arg.(value & opt string "1,2,4,8"
         & info [ "p"; "procs" ] ~docv:"P1,P2"
             ~doc:"Machine sizes for the parallel-timing runs")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"OUT.json"
             ~doc:"Write the flight-recorder + validation report as JSON")
  in
  let real_procs =
    Arg.(value & opt string ""
         & info [ "real-procs" ] ~docv:"P1,P2"
             ~doc:"Also execute each compiled program for real on these \
                   OCaml domain counts and require identity with the serial \
                   interpreter (float reductions compared under the \
                   reassociation-aware ULP tolerance; default: off)")
  in
  let go file suite baseline_only polaris_only ulp seeds procs trace_out
      real_procs jobs chunk pipeline =
    with_errors (fun () ->
        setup_pool jobs chunk;
        let cmp = { Valid.Oracle.default_cmp with ulp_tol = ulp } in
        let seeds = parse_int_list ~what:"seed" seeds in
        let procs_list = parse_int_list ~what:"processor" procs in
        let procs_list = if procs_list = [] then [ 1; 2; 4; 8 ] else procs_list in
        let real_procs_list = parse_int_list ~what:"processor" real_procs in
        let pl = resolve_pipeline pipeline in
        let configs =
          List.map (apply_pipeline pl)
            (match (baseline_only, polaris_only) with
            | true, false -> [ Core.Config.baseline () ]
            | false, true -> [ Core.Config.polaris () ]
            | _ -> [ Core.Config.polaris (); Core.Config.baseline () ])
        in
        let targets =
          if suite then
            List.map
              (fun (c : Suite.Code.t) -> (c.name, c.source))
              Suite.Registry.all
          else
            let f = required_file file in
            [ (Filename.basename f, read_file f) ]
        in
        let results =
          List.concat_map
            (fun (label, source) ->
              List.map
                (fun config ->
                  ( label,
                    config.Core.Config.name,
                    validate_one ~cmp ~procs_list ~seeds ~label config source ))
                configs)
            targets
        in
        (* the real-execution lane: the compiled program must reproduce
           its own serial semantics when the annotated loops actually
           run on domains *)
        let real_failures =
          if real_procs_list = [] then []
          else begin
            let real_cmp =
              { Valid.Oracle.real_cmp with
                ulp_tol =
                  max ulp Valid.Oracle.real_cmp.Valid.Oracle.ulp_tol }
            in
            List.concat_map
              (fun (label, source) ->
                List.filter_map
                  (fun (config : Core.Config.t) ->
                    let t = Core.Pipeline.compile config source in
                    let report =
                      Valid.Oracle.differential_real ~cmp:real_cmp
                        ~procs_list:real_procs_list ~seeds
                        t.Core.Pipeline.program ()
                    in
                    if Valid.Oracle.equivalent report then begin
                      Fmt.pr "%-10s %-9s real ok %4d checks (p=%s)@." label
                        config.name report.Valid.Oracle.checks
                        (String.concat ","
                           (List.map string_of_int real_procs_list));
                      None
                    end
                    else begin
                      Fmt.pr "%-10s %-9s real FAIL@.  @[<v>%a@]@." label
                        config.name Valid.Oracle.pp_report report;
                      Some (label, config.name)
                    end)
                  configs)
              targets
          end
        in
        (* the emission lane: every registered backend over every
           (code, pipeline) row.  Re-parsing backends must round-trip
           through our own frontend and print what the transformed
           program prints; non-reparsing backends must at least emit
           deterministically (their semantics are pinned by the golden
           suite and `polaris native`). *)
        let emit_failures =
          List.concat_map
            (fun (label, source) ->
              List.concat_map
                (fun (config : Core.Config.t) ->
                  let t = Core.Pipeline.compile config source in
                  let prog = t.Core.Pipeline.program in
                  List.filter_map
                    (fun (b : Backend.Registry.t) ->
                      let output = b.b_emit prog in
                      let verdict =
                        if b.b_reparses then
                          match Frontend.Parser.parse_string output with
                          | exception e ->
                            Some ("reparse: " ^ Printexc.to_string e)
                          | p2 ->
                            let want =
                              (Machine.Interp.run prog).Machine.Interp.output
                            in
                            let got =
                              (Machine.Interp.run p2).Machine.Interp.output
                            in
                            if want = got then None
                            else Some "oracle divergence on re-parsed output"
                        else if String.equal output (b.b_emit prog) then None
                        else Some "nondeterministic emission"
                      in
                      match verdict with
                      | None ->
                        Fmt.pr "%-10s %-9s emit %-8s ok (%d bytes)@." label
                          config.name b.b_name (String.length output);
                        None
                      | Some m ->
                        Fmt.pr "%-10s %-9s emit %-8s FAIL (%s)@." label
                          config.name b.b_name m;
                        Some (label, config.name, b.b_name))
                    Backend.Registry.all)
                configs)
            targets
        in
        (match trace_out with
        | None -> ()
        | Some path ->
          let oc = open_out path in
          let entries =
            List.map
              (fun (label, cfg, report) ->
                Valid.Trace.Json.obj
                  [ ("code", Valid.Trace.Json.str label);
                    ("config", Valid.Trace.Json.str cfg);
                    ("report", Valid.Snapshot.report_json report) ])
              results
          in
          output_string oc (Valid.Trace.Json.arr entries);
          output_string oc "\n";
          close_out oc;
          Fmt.pr "flight record written to %s@." path);
        let failures =
          List.filter (fun (_, _, r) -> not (Valid.Snapshot.ok r)) results
        in
        if failures <> [] || real_failures <> [] || emit_failures <> []
        then begin
          if failures <> [] then
            Fmt.epr "validation failed on %d of %d compilations@."
              (List.length failures) (List.length results);
          if real_failures <> [] then
            Fmt.epr "real execution diverged on %d compilations@."
              (List.length real_failures);
          if emit_failures <> [] then
            Fmt.epr "backend emission failed on %d rows@."
              (List.length emit_failures);
          exit 1
        end)
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Translation-validate the pipeline by differential execution")
    Term.(
      const go $ file_pos $ suite $ baseline_only $ polaris_only $ ulp $ seeds
      $ procs $ trace_out $ real_procs $ jobs_flag $ chunk_flag
      $ pipeline_flag)

(* ----- serve ----- *)

let serve_cmd =
  let files =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:
            "Fortran source files to compile in sequence (typically edit \
             deltas of one program).  With no FILE arguments, paths are \
             read from stdin, one per line — an editor or build daemon can \
             stream recompile requests.")
  in
  let baseline =
    Arg.(value & flag & info [ "baseline" ] ~doc:"Use the baseline (PFA-like) pipeline")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "After every incremental compile, recompile the same source \
             from scratch (caches cleared) and compare annotated output, \
             per-loop verdicts, incidents and dependence counters; exit \
             non-zero on any divergence")
  in
  let emit =
    Arg.(
      value & flag
      & info [ "emit" ] ~doc:"Print each compile's transformed source")
  in
  let go files baseline check emit strict jobs chunk explain_reuse pipeline
      backend =
    with_errors (fun () ->
        setup_pool jobs chunk;
        let paths =
          if files <> [] then files
          else
            let rec loop acc =
              match input_line stdin with
              | line ->
                let line = String.trim line in
                loop (if line = "" then acc else line :: acc)
              | exception End_of_file -> List.rev acc
            in
            loop []
        in
        if paths = [] then begin
          Fmt.epr "polaris: serve: no input files@.";
          exit 1
        end;
        let config =
          apply_pipeline (resolve_pipeline pipeline)
            (config_of ~baseline ~procs:8)
        in
        let bk = resolve_backend backend in
        let divergent = ref 0 in
        let incidents = ref 0 in
        let failed = ref 0 in
        List.iteri
          (fun i path ->
            (* per-file containment: an unreadable or unparseable path
               fails THIS file; the session keeps serving the rest *)
            match
              Serve.Local.compile_path ~strict ~check ~backend:bk config path
            with
            | Error msg ->
              incr failed;
              Fmt.epr "[%d/%d] %-20s ERROR: %s@." (i + 1) (List.length paths)
                path msg
            | Ok c ->
              let r = c.lc_result in
              let s = r.stats in
              Fmt.pr "[%d/%d] %-20s %d/%d loops parallel   reuse %5.1f%% (%d/%d analysis lookups)@."
                (i + 1) (List.length paths) path
                (List.length (Core.Pipeline.parallel_loops r.pipeline))
                (List.length r.pipeline.loops)
                (100.0 *. s.st_reuse_rate) s.st_hits s.st_lookups;
              incidents := !incidents + List.length r.pipeline.incidents;
              List.iter
                (fun inc -> Fmt.pr "    %a@." Core.Pipeline.pp_incident inc)
                r.pipeline.incidents;
              if explain_reuse then
                Fmt.pr "%a" Valid.Trace.pp_reuse_table r.pipeline.reuse;
              if emit then print_string c.lc_output;
              if check then begin
                match c.lc_check_divergences with
                | [] -> Fmt.pr "    check: identical to from-scratch compile@."
                | ds ->
                  incr divergent;
                  Fmt.epr "    check: DIVERGED from from-scratch compile:@.";
                  List.iter (fun d -> Fmt.epr "      %s@." d) ds
              end)
          paths;
        if !divergent > 0 then begin
          Fmt.epr "polaris: serve: %d of %d compiles diverged@." !divergent
            (List.length paths);
          exit 1
        end;
        if !failed > 0 then begin
          Fmt.epr "polaris: serve: %d of %d files failed@." !failed
            (List.length paths);
          exit 1
        end;
        if !incidents > 0 then exit 2)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Incremental recompilation: compile a sequence of sources in one \
          process, reusing every analysis whose program unit is unchanged")
    Term.(
      const go $ files $ baseline $ check $ emit $ strict_flag $ jobs_flag
      $ chunk_flag $ explain_reuse_flag $ pipeline_flag $ backend_flag)

(* ----- daemon ----- *)

let socket_flag =
  Arg.(
    value
    & opt string (Serve.Daemon.default_socket ())
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket the daemon listens on (default \
           \\$(b,POLARIS_SOCKET) or a per-user path under the temp dir)")

let daemon_cmd =
  let store =
    Arg.(
      value
      & opt (some string) Util.Env.cache_dir
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Directory of the persistent analysis store (default \
             \\$(b,POLARIS_CACHE_DIR); no persistence when unset — facts \
             are still shared across sessions in memory)")
  in
  let max_mb =
    Arg.(
      value
      & opt int Util.Env.max_cache_mb
      & info [ "max-cache-mb" ] ~docv:"MB"
          ~doc:
            "Size bound of the persistent store; least-recently-used \
             facts are evicted beyond it (default \
             \\$(b,POLARIS_MAX_CACHE_MB) or 64)")
  in
  let baseline =
    Arg.(value & flag & info [ "baseline" ] ~doc:"Serve the baseline (PFA-like) pipeline")
  in
  let budget_steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-steps" ] ~docv:"N"
          ~doc:
            "Per-request analysis fuel: a request that exhausts it gets \
             safe serial verdicts instead of stalling other sessions")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Per-request analysis deadline (same degradation as fuel)")
  in
  let log =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:"Append one JSON line per request (latency, reuse, incidents)")
  in
  let max_sessions =
    Arg.(
      value
      & opt int Util.Env.max_sessions
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:
            "Admission cap: connections beyond N concurrent sessions are \
             shed with a Busy response (default \\$(b,POLARIS_MAX_SESSIONS) \
             or 64)")
  in
  let idle_timeout =
    Arg.(
      value
      & opt float Util.Env.idle_timeout_s
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Evict sessions idle longer than this (default \
             \\$(b,POLARIS_IDLE_TIMEOUT_S) or 600)")
  in
  let flush_every =
    Arg.(
      value
      & opt int Util.Env.flush_every
      & info [ "flush-every" ] ~docv:"N"
          ~doc:
            "Flush the persistent store after every N compile requests, \
             bounding what a crash can lose (default \
             \\$(b,POLARIS_FLUSH_EVERY) or 64)")
  in
  let flush_interval =
    Arg.(
      value
      & opt float Util.Env.flush_interval_s
      & info [ "flush-interval" ] ~docv:"SECONDS"
          ~doc:
            "Also flush the persistent store after this many seconds with \
             unflushed work (default \\$(b,POLARIS_FLUSH_INTERVAL_S) or 30)")
  in
  let max_pipeline =
    Arg.(
      value
      & opt int 32
      & info [ "max-pipeline" ] ~docv:"N"
          ~doc:
            "Pipelined requests executed per connection per loop turn; an \
             aggressive pipeliner round-robins with the other sessions")
  in
  let max_inflight =
    let inflight_conv =
      let parse s =
        match Util.Env.parse_inflight s with
        | Ok n -> Ok n
        | Error m -> Error (`Msg m)
      in
      Arg.conv (parse, Fmt.int)
    in
    Arg.(
      value
      & opt inflight_conv Util.Env.max_inflight
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Compile requests from different sessions executed concurrently \
             (default \\$(b,POLARIS_MAX_INFLIGHT) or 1).  Responses stay \
             byte-identical and in per-session order at every N; 1 is the \
             classic serial loop.")
  in
  let go socket store max_mb baseline budget_steps deadline log max_sessions
      idle_timeout flush_every flush_interval max_pipeline max_inflight jobs
      chunk pipeline backend =
    with_errors (fun () ->
        Util.Pool.set_chunk chunk;
        let cfg =
          { (Serve.Daemon.default_cfg ()) with
            d_socket = socket;
            d_store_dir = store;
            d_max_cache_mb = max_mb;
            d_baseline = baseline;
            d_pipeline = resolve_pipeline pipeline;
            d_backend =
              (match (backend, Util.Env.backend) with
              | None, None -> None
              | _ -> Some (resolve_backend backend));
            d_jobs = jobs;
            d_max_inflight = max_inflight;
            d_budget_steps = budget_steps;
            d_deadline_s = deadline;
            d_log = log;
            d_max_sessions = max_sessions;
            d_idle_timeout_s = idle_timeout;
            d_flush_every = flush_every;
            d_flush_interval_s = flush_interval;
            d_max_pipeline = max_pipeline }
        in
        let report =
          Serve.Daemon.run ~signals:true
            ~on_ready:(fun () ->
              Fmt.pr "polaris daemon listening on %s@." socket;
              (match store with
              | Some d -> Fmt.pr "persistent store: %s (%d MB bound)@." d max_mb
              | None -> Fmt.pr "persistent store: disabled@.");
              Fmt.pr "admission: %d session(s), idle timeout %.0fs@."
                max_sessions idle_timeout;
              if max_inflight > 1 then
                Fmt.pr "concurrency: up to %d compile(s) in flight@."
                  max_inflight;
              Fmt.pr "stop with SIGINT/SIGTERM or `polaris client --shutdown'@.")
            cfg
        in
        Fmt.pr "polaris daemon: served %d request(s) over %d session(s)@."
          report.r_requests report.r_sessions;
        if report.r_shed + report.r_evicted_slow + report.r_evicted_idle > 0
        then
          Fmt.pr
            "polaris daemon: shed %d connection(s), evicted %d slow / %d idle@."
            report.r_shed report.r_evicted_slow report.r_evicted_idle)
  in
  Cmd.v
    (Cmd.info "daemon"
       ~doc:
         "Run the compile daemon: a multi-client server whose sessions \
          share one persistent analysis store")
    Term.(
      const go $ socket_flag $ store $ max_mb $ baseline $ budget_steps
      $ deadline $ log $ max_sessions $ idle_timeout $ flush_every
      $ flush_interval $ max_pipeline $ max_inflight $ jobs_flag
      $ chunk_flag $ pipeline_flag $ backend_flag)

(* ----- client ----- *)

let client_cmd =
  let files =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Fortran source files to compile on the daemon")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Ask the daemon to verify each compile against a from-scratch one")
  in
  let baseline =
    Arg.(value & flag & info [ "baseline" ] ~doc:"Use the baseline (PFA-like) pipeline")
  in
  let emit =
    Arg.(value & flag & info [ "emit" ] ~doc:"Print each compile's transformed source")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print the server's stats report (JSON)")
  in
  let shutdown =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the daemon to drain, flush and exit")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry each compile up to N times over fresh connections with \
             exponential backoff; transient failures (transport errors, \
             timeouts, Busy sheds) are retried, application errors are \
             final.  Compiles are deterministic, so the resend is \
             idempotent-safe.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-request wall deadline: fail (and with --retries, retry) \
             instead of waiting forever on a stalled daemon")
  in
  let ping =
    Arg.(
      value & flag
      & info [ "ping" ]
          ~doc:"Probe the daemon's liveness (exit 0 iff it answers)")
  in
  let go socket files check baseline emit stats shutdown retries timeout ping
      pipeline backend =
    with_errors (fun () ->
        (* resolve the names locally against the same registries the
           daemon uses, so a typo exits 1 before a connection is even
           attempted; the wire carries the resolved spec ("" = let the
           daemon pick its own default) *)
        let pipeline =
          match resolve_pipeline pipeline with
          | Some pl -> pl.Core.Registry.pl_name
          | None -> ""
        in
        let backend =
          match (backend, Util.Env.backend) with
          | None, None -> ""
          | _ -> (resolve_backend backend).Backend.Registry.b_name
        in
        if files = [] && not (stats || shutdown || ping) then begin
          Fmt.epr
            "polaris: client: nothing to do (no FILE, no --stats, no --ping, \
             no --shutdown)@.";
          exit 1
        end;
        let failed = ref 0 and divergent = ref 0 in
        let report_reply i path (r : Serve.Protocol.compile_reply) =
          Fmt.pr
            "[%d/%d] %-20s %d verdict(s)   shared reuse %5.1f%% (%d/%d)   \
             %.1f ms@."
            (i + 1) (List.length files) path
            (List.length r.co_verdicts)
            (100.0
            *. (if r.co_shared_lookups = 0 then 0.0
                else
                  float_of_int r.co_shared_hits
                  /. float_of_int r.co_shared_lookups))
            r.co_shared_hits r.co_shared_lookups r.co_wall_ms;
          if emit then print_string r.co_output;
          if r.co_check_divergences <> [] then begin
            incr divergent;
            Fmt.epr "    check: DIVERGED on the daemon:@.";
            List.iter (fun d -> Fmt.epr "      %s@." d) r.co_check_divergences
          end
        in
        let with_conn f =
          match Serve.Client.connect ?deadline_s:timeout socket with
          | Error m ->
            Fmt.epr "polaris: %s@." m;
            exit 1
          | Ok c ->
            Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () ->
                f c)
        in
        if ping then
          with_conn (fun c ->
              match Serve.Client.ping c with
              | Ok () -> Fmt.pr "daemon at %s is alive@." socket
              | Error m ->
                Fmt.epr "polaris: ping: %s@." m;
                exit 1);
        (if files <> [] then
           if retries > 0 then
             (* recovery mode: every file compiles over its own
                connection(s) so one poisoned session costs one attempt *)
             List.iteri
               (fun i path ->
                 match Serve.Local.read_file path with
                 | exception Sys_error msg ->
                   incr failed;
                   Fmt.epr "[%d/%d] %-20s ERROR: %s@." (i + 1)
                     (List.length files) path msg
                 | source -> (
                   match
                     Serve.Client.compile_retry ~retries ?deadline_s:timeout
                       ~check ~baseline ~pipeline ~backend ~socket ~label:path
                       source
                   with
                   | Error msg ->
                     incr failed;
                     Fmt.epr "[%d/%d] %-20s ERROR: %s@." (i + 1)
                       (List.length files) path msg
                   | Ok r -> report_reply i path r))
               files
           else
             with_conn (fun c ->
                 List.iteri
                   (fun i path ->
                     match
                       Serve.Client.compile_path c ~check ~baseline ~pipeline
                         ~backend path
                     with
                     | Error msg ->
                       incr failed;
                       Fmt.epr "[%d/%d] %-20s ERROR: %s@." (i + 1)
                         (List.length files) path msg
                     | Ok r -> report_reply i path r)
                   files));
        (if stats || shutdown then
           with_conn (fun c ->
               (if stats then
                  match Serve.Client.stats c with
                  | Ok j -> Fmt.pr "%s@." j
                  | Error m ->
                    incr failed;
                    Fmt.epr "polaris: stats: %s@." m);
               if shutdown then
                 match Serve.Client.shutdown c with
                 | Ok () -> Fmt.pr "daemon is shutting down@."
                 | Error m ->
                   incr failed;
                   Fmt.epr "polaris: shutdown: %s@." m));
        if !divergent > 0 || !failed > 0 then exit 1)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Compile files on a running polaris daemon (thin client)")
    Term.(
      const go $ socket_flag $ files $ check $ baseline $ emit $ stats
      $ shutdown $ retries $ timeout $ ping $ pipeline_flag $ backend_flag)

(* ----- chaos ----- *)

let chaos_cmd =
  let seeds =
    Arg.(
      value & opt int 100
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeded fault plans to run")
  in
  let first_seed =
    Arg.(value & opt int 1 & info [ "first-seed" ] ~docv:"S" ~doc:"First seed")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"OUT.json"
          ~doc:"Write the sweep report (failures, incidents) as JSON")
  in
  let go seeds first_seed out jobs chunk =
    with_errors (fun () ->
        setup_pool jobs chunk;
        let sources = Valid.Chaos.default_sources () in
        let sweep =
          Valid.Chaos.run_sweep ~procs_list:[ 4 ] ~first_seed ~n:seeds sources
        in
        Fmt.pr "%a" Valid.Chaos.pp_sweep sweep;
        (match out with
        | None -> ()
        | Some path ->
          let oc = open_out path in
          output_string oc (Valid.Chaos.sweep_json sweep);
          output_string oc "\n";
          close_out oc;
          Fmt.pr "chaos report written to %s@." path);
        if not (Valid.Chaos.sweep_ok sweep) then exit 1)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Fault-injection sweep: seeded exceptions, IR corruptions and \
          budget exhaustion must all be contained, attributed and \
          oracle-equivalent")
    Term.(const go $ seeds $ first_seed $ out $ jobs_flag $ chunk_flag)

(* ----- registry listings ----- *)

let list_passes_cmd =
  Cmd.v
    (Cmd.info "list-passes"
       ~doc:
         "List every registered pass with the analyses it consumes, the \
          caches it invalidates and its fault-containment behaviour")
    Term.(const (fun () -> Fmt.pr "%a" Core.Registry.pp_passes ()) $ const ())

let list_pipelines_cmd =
  let show () =
    Fmt.pr "%a" Core.Registry.pp_pipelines ();
    Fmt.pr
      "custom     custom:P1,P2,..  any registry-valid ordering of the passes \
       above@."
  in
  Cmd.v
    (Cmd.info "list-pipelines"
       ~doc:"List the preset pass pipelines and the custom: spec syntax")
    Term.(const show $ const ())

let list_backends_cmd =
  Cmd.v
    (Cmd.info "list-backends" ~doc:"List the registered emission backends")
    Term.(const (fun () -> Fmt.pr "%a" Backend.Registry.pp_backends ()) $ const ())

(* ----- native ----- *)

(* numeric-aware stdout comparison: a native compiler's list-directed /
   printf formatting differs textually from the interpreter's, and an
   OpenMP reduction may reassociate, so tokens that parse as numbers
   compare under a relative tolerance; everything else (T/F logicals)
   must match exactly *)
let native_tokens s =
  let is_ws c = c = ' ' || c = '\n' || c = '\t' || c = '\r' in
  let toks = ref [] and b = Buffer.create 16 in
  let flush_tok () =
    if Buffer.length b > 0 then begin
      toks := Buffer.contents b :: !toks;
      Buffer.clear b
    end
  in
  String.iter (fun c -> if is_ws c then flush_tok () else Buffer.add_char b c) s;
  flush_tok ();
  List.rev !toks

let native_token_eq a b =
  match (float_of_string_opt a, float_of_string_opt b) with
  | Some x, Some y ->
    x = y
    || Float.abs (x -. y)
       <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  | _ -> String.equal a b

let read_process cmd =
  let ic = Unix.open_process_in cmd in
  let b = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel b ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (Buffer.contents b, status)

let native_cmd =
  let codes =
    Arg.(
      value
      & opt string "swim,tomcatv,arc2d"
      & info [ "codes" ] ~docv:"N1,N2"
          ~doc:"Comma-separated suite codes to check (or $(b,all))")
  in
  let backends =
    Arg.(
      value
      & opt string "f77-omp,c"
      & info [ "backends" ] ~docv:"B1,B2"
          ~doc:"Comma-separated backends to compile natively")
  in
  let go codes backends pipeline jobs chunk =
    with_errors (fun () ->
        setup_pool jobs chunk;
        let pl = resolve_pipeline pipeline in
        let names = String.split_on_char ',' codes |> List.map String.trim in
        let codes =
          if names = [ "all" ] then Suite.Registry.all
          else
            List.map
              (fun n ->
                match Suite.Registry.find n with
                | c -> c
                | exception Not_found ->
                  Fmt.epr "polaris: native: unknown suite code %s@." n;
                  exit 1)
              names
        in
        let backends =
          String.split_on_char ',' backends
          |> List.map (fun n ->
                 match Backend.Registry.find (String.trim n) with
                 | Ok b -> b
                 | Error m ->
                   Fmt.epr "polaris: native: %s@." m;
                   exit 1)
        in
        let tmp =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "polaris-native-%d" (Unix.getpid ()))
        in
        (try Unix.mkdir tmp 0o755
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let failures = ref 0 in
        let checked = ref 0 in
        List.iter
          (fun (b : Backend.Registry.t) ->
            (* the compile line mirrors the backend's own documentation:
               OpenMP on, and for Fortran, 8-byte reals so native
               arithmetic matches the interpreter's doubles *)
            let compiler, flags, libs =
              match b.b_family with
              | Backend.Registry.Fortran ->
                ( "gfortran",
                  "-O1 -fopenmp -ffixed-line-length-none -fdefault-real-8",
                  "" )
              | Backend.Registry.C -> ("cc", "-O1 -fopenmp", "-lm")
            in
            let available =
              Sys.command
                (Printf.sprintf "command -v %s >/dev/null 2>&1" compiler)
              = 0
            in
            if not available then
              (* a missing toolchain skips the lane cleanly: this check
                 is gated on the host, it is not a test failure *)
              Fmt.pr "native %-8s skipped (%s not found)@." b.b_name compiler
            else
              List.iter
                (fun (c : Suite.Code.t) ->
                  let t =
                    Core.Pipeline.compile
                      (apply_pipeline pl (Core.Config.polaris ()))
                      c.source
                  in
                  let src =
                    Filename.concat tmp
                      (Printf.sprintf "%s.%s" c.name b.b_ext)
                  in
                  let oc = open_out src in
                  output_string oc (b.b_emit t.program);
                  close_out oc;
                  let exe =
                    Filename.concat tmp
                      (Printf.sprintf "%s-%s.exe" c.name b.b_name)
                  in
                  let cmd =
                    Printf.sprintf "%s %s -o %s %s %s 2>%s.err" compiler flags
                      exe src libs exe
                  in
                  if Sys.command cmd <> 0 then begin
                    incr failures;
                    Fmt.pr "native %-8s %-8s FAIL (native compile; see %s.err)@."
                      b.b_name c.name exe
                  end
                  else begin
                    let out, _ = read_process (exe ^ " 2>&1") in
                    let oracle =
                      String.concat "\n"
                        (Machine.Interp.run t.program).Machine.Interp.output
                    in
                    let got = native_tokens out in
                    let want = native_tokens oracle in
                    incr checked;
                    if
                      List.length got = List.length want
                      && List.for_all2 native_token_eq got want
                    then
                      Fmt.pr "native %-8s %-8s ok (%d output tokens)@."
                        b.b_name c.name (List.length want)
                    else begin
                      incr failures;
                      Fmt.pr "native %-8s %-8s FAIL@.  oracle: %s@.  native: %s@."
                        b.b_name c.name oracle (String.trim out)
                    end
                  end)
                codes)
          backends;
        if !failures > 0 then begin
          Fmt.epr "polaris: native: %d check(s) failed@." !failures;
          exit 1
        end;
        if !checked = 0 then Fmt.pr "native: nothing checked (no compiler)@.")
  in
  Cmd.v
    (Cmd.info "native"
       ~doc:
         "Compile suite codes through a native toolchain (gfortran/cc with \
          OpenMP) and compare their runtime output against the \
          interpreter oracle; lanes whose compiler is absent are skipped \
          cleanly")
    Term.(
      const go $ codes $ backends $ pipeline_flag $ jobs_flag $ chunk_flag)

let () =
  let doc = "Polaris-style automatic parallelizer (ICPP'96 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "polaris" ~doc)
          [ compile_cmd; run_cmd; suite_cmd; validate_cmd; serve_cmd;
            daemon_cmd; client_cmd; chaos_cmd; list_passes_cmd;
            list_pipelines_cmd; list_backends_cmd; native_cmd ]))
