(** Experiment harness: regenerates every table and figure of the paper.

    Usage: [main.exe [table1|fig1|fig2|fig3|fig4|fig5|fig6|fig7|micro|ablation]]
    With no argument every experiment runs in order.  EXPERIMENTS.md
    records paper-vs-measured for each.  All results except [micro] are
    deterministic simulated-time measurements. *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let run_both ?(procs = 8) (source : string) =
  ( Core.Simulate.compile_and_run (Core.Config.polaris ~procs ()) source,
    Core.Simulate.compile_and_run (Core.Config.baseline ~procs ()) source )

let print_reports reports =
  List.iter
    (fun (_, rs) ->
      List.iter
        (fun (r : Passes.Parallelize.loop_report) ->
          Printf.printf "  DO %-4s %s%s -- %s\n" r.loop_index
            (if r.parallel then "PARALLEL" else "serial  ")
            (if r.speculative then " (speculative candidate)" else "")
            r.reason)
        rs)
    reports

(* ------------------------------------------------------------------ *)
(* Table 1: benchmark codes studied                                    *)

let table1 () =
  section "Table 1: benchmark codes studied (paper vs. this reproduction)";
  Printf.printf "%-8s %-8s | %6s %6s | %6s %10s\n" "Program" "Origin"
    "paper" "paper" "synth" "simulated";
  Printf.printf "%-8s %-8s | %6s %6s | %6s %10s\n" "" "" "lines" "sec"
    "lines" "serial time";
  Printf.printf "%s\n" (String.make 62 '-');
  List.iter
    (fun (c : Suite.Code.t) ->
      let p = Frontend.Parser.parse_string c.source in
      let r = Machine.Interp.run p in
      Printf.printf "%-8s %-8s | %6d %6d | %6d %10d\n" c.name
        (Suite.Code.origin_to_string c.origin)
        c.paper_lines c.paper_serial_s
        (Suite.Registry.synthetic_lines c)
        r.time)
    Suite.Registry.all

(* ------------------------------------------------------------------ *)
(* Fig. 1: substitution of cascaded inductions                         *)

let fig1_source = {|
      PROGRAM FIG1
      INTEGER N, I, J, K1, K2
      PARAMETER (N = 8)
      REAL B(1000)
      K1 = 0
      K2 = 0
      DO I = 1, N
        DO J = 1, I
          K1 = K1 + 1
          B(K1) = B(K1) + 1.0
          K2 = K2 + K1
        END DO
        B(K2) = B(K2) - 1.0
      END DO
      PRINT *, K1, K2
      END
|}

let fig1 () =
  section "Fig. 1: substitution of cascaded inductions (K1, K2)";
  let p = Frontend.Parser.parse_string fig1_source in
  let before, arr_before = Machine.Interp.run_capture p in
  let subs = Passes.Induction.run p in
  Printf.printf "substituted: %s\n"
    (String.concat ", " (List.map (fun (v, l) -> v ^ " in loop " ^ l) subs));
  print_string (Frontend.Unparse.program_to_string p);
  let after, arr_after = Machine.Interp.run_capture p in
  Printf.printf "semantics preserved: outputs %b, memory %b\n"
    (before.output = after.output)
    (arr_before = arr_after);
  print_reports (Passes.Parallelize.run ~mode:Passes.Parallelize.Polaris p)

(* ------------------------------------------------------------------ *)
(* Fig. 2: TRFD OLDA induction substitution + range test               *)

let fig2_source = {|
      PROGRAM OLDA
      INTEGER M, N, I, J, K, X, X0
      PARAMETER (M = 12, N = 10)
      REAL A(1000)
      X0 = 0
      DO I = 0, M - 1
        X = X0
        DO J = 0, N - 1
          DO K = 0, J - 1
            X = X + 1
            A(X) = I * 0.5 + J * 0.25 + K * 0.125
          END DO
        END DO
        X0 = X0 + (N**2 + N) / 2
      END DO
      PRINT *, A(1), A(550)
      END
|}

let fig2 () =
  section "Fig. 2: induction substitution in TRFD (OLDA/100)";
  let p = Frontend.Parser.parse_string fig2_source in
  let before, mem_before = Machine.Interp.run_capture p in
  ignore (Passes.Induction.run p);
  Passes.Constprop.run p;
  print_string (Frontend.Unparse.program_to_string p);
  let after, mem_after = Machine.Interp.run_capture p in
  Printf.printf "semantics preserved: outputs %b, memory %b\n"
    (before.output = after.output)
    (mem_before = mem_after);
  Printf.printf "paper: all three loops parallel after substitution; measured:\n";
  print_reports (Passes.Parallelize.run ~mode:Passes.Parallelize.Polaris p);
  Printf.printf "baseline pipeline (classic induction + gcd/banerjee/SIV):\n";
  let t2 = Core.Pipeline.compile (Core.Config.baseline ()) fig2_source in
  print_reports
    (List.map
       (fun (l : Core.Pipeline.loop_result) -> (l.unit_name, [ l.report ]))
       t2.loops)

(* ------------------------------------------------------------------ *)
(* Fig. 3: OCEAN FTRVMT/109 range test with loop permutation           *)

let fig3_source = {|
      PROGRAM FTRVMT
      INTEGER X, K, J, I
      INTEGER Z(0:15)
      REAL A(100000)
      X = 4
      DO K = 0, X - 1
        Z(K) = 6 + K
      END DO
      DO K = 0, X - 1
        DO J = 0, Z(K)
          DO I = 0, 128
            A(258*X*J + 129*K + I + 1) = A(258*X*J + 129*K + I + 1) * 0.5
            A(258*X*J + 129*K + I + 1 + 129*X) = A(258*X*J + 129*K + I + 1) + 1.0
          END DO
        END DO
      END DO
      PRINT *, A(1), A(129)
      END
|}

let fig3 () =
  section "Fig. 3: range test with loop permutation on FTRVMT/109";
  let p = Frontend.Parser.parse_string fig3_source in
  Printf.printf "paper: all three loops parallel, outermost needs permutation;\n";
  Printf.printf "measured (range test, symbolic X):\n";
  print_reports (Passes.Parallelize.run ~mode:Passes.Parallelize.Polaris p);
  Printf.printf "baseline pipeline on the same nest:\n";
  let t2 = Core.Pipeline.compile (Core.Config.baseline ()) fig3_source in
  print_reports
    (List.map
       (fun (l : Core.Pipeline.loop_result) -> (l.unit_name, [ l.report ]))
       t2.loops)

(* ------------------------------------------------------------------ *)
(* Fig. 4: array privatization via demand-driven proof (MP >= M*P)     *)

let fig4_source = {|
      PROGRAM FIG4
      INTEGER M, P, MP, I, J, K
      REAL A(1000), B(100, 1000), C(100, 1000)
      M = 10
      P = 25
      MP = M * P
      DO I = 1, 100
        DO J = 1, MP
          A(J) = B(I, J) + 1.0
        END DO
        DO K = 1, M * P
          C(I, K) = A(K) * 2.0
        END DO
      END DO
      PRINT *, C(50, 125)
      END
|}

let fig4 () =
  section "Fig. 4: privatization of A needs MP >= M*P (GSA demand proof)";
  let p = Frontend.Parser.parse_string fig4_source in
  let reports = Passes.Parallelize.run ~mode:Passes.Parallelize.Polaris p in
  Printf.printf "paper: loop I parallel with A privatized; measured:\n";
  print_reports reports

(* ------------------------------------------------------------------ *)
(* Fig. 5: BDNA privatization with monotonic index arrays              *)

let fig5_source = {|
      PROGRAM FIG5
      INTEGER N, I, J, K, L, P, M, IND(1000)
      PARAMETER (N = 100)
      REAL A(1000), X(500, 500), Y(500, 500), Z, W, R, RCUTS
      W = 0.5
      Z = 1.5
      RCUTS = 50.0
      DO I = 2, N
        DO J = 1, I - 1
          IND(J) = 0
          A(J) = X(I, J) - Y(I, J)
          R = A(J) + W
          IF (R .LT. RCUTS) IND(J) = 1
        END DO
        P = 0
        DO K = 1, I - 1
          IF (IND(K) .NE. 0) THEN
            P = P + 1
            IND(P) = K
          END IF
        END DO
        DO L = 1, P
          M = IND(L)
          X(I, L) = A(M) + Z
        END DO
      END DO
      PRINT *, X(100, 1)
      END
|}

let fig5 () =
  section "Fig. 5: BDNA loop - privatization of A and IND";
  let p = Frontend.Parser.parse_string fig5_source in
  let reports = Passes.Parallelize.run ~mode:Passes.Parallelize.Polaris p in
  Printf.printf
    "paper: loop I parallel with R, P, M, IND, A privatized; K is a\n\
     sequential compaction scan; measured:\n";
  print_reports reports

(* ------------------------------------------------------------------ *)
(* Fig. 6: PD test - speedup and potential slowdown vs processors      *)

let nlfilt_source ~collide = Printf.sprintf {|
      PROGRAM NLFILT
      INTEGER N, K, COLL
      PARAMETER (N = 2048)
      INTEGER IX(2048), JX(2048)
      REAL D(4096), S(4096), T
      COLL = %d
      DO K = 1, N
        IX(K) = 2 * K - MOD(K, 2)
        JX(K) = IX(K)
        S(K) = 0.5 * K
      END DO
      IF (COLL .EQ. 1) THEN
        JX(37) = IX(36)
      END IF
      DO K = 1, N
        T = D(JX(K)) + S(K)
        D(IX(K)) = T * 0.5 + 1.0
      END DO
      PRINT *, D(1)
      END
|} (if collide then 1 else 0)

let find_speculative_loop p =
  let u = Fir.Program.main p in
  let nests = Analysis.Loops.nests_of_unit u in
  let target =
    List.find
      (fun n ->
        let l = Analysis.Loops.innermost n in
        l.Analysis.Loops.dloop.info.speculative)
      nests
  in
  (Analysis.Loops.innermost target).Analysis.Loops.stmt.sid

let fig6 () =
  section "Fig. 6: PD test on the NLFILT-like loop (TRACK NLFILT/300)";
  Printf.printf
    "loop flagged as a speculative DOALL candidate (subscripted\n\
     subscripts); 10 invocations, 9 parallel and 1 not, as in the paper\n\n";
  Printf.printf "%5s | %9s %9s | %9s %10s | %9s\n" "procs" "pass spd"
    "fail spd" "90%-mix" "paper mix" "slowdown";
  Printf.printf "%s\n" (String.make 66 '-');
  List.iter
    (fun procs ->
      let run ~collide =
        let p = Frontend.Parser.parse_string (nlfilt_source ~collide) in
        let _ = Passes.Parallelize.run ~mode:Passes.Parallelize.Polaris p in
        let sid = find_speculative_loop p in
        Fruntime.Speculative.run ~procs ~loop_sid:sid ~array:"D" p
      in
      let ok = run ~collide:false in
      let bad = run ~collide:true in
      assert (ok.verdict <> Fruntime.Shadow.Not_parallel);
      assert (bad.verdict = Fruntime.Shadow.Not_parallel);
      (* the paper's experiment: 90% of invocations parallel *)
      let mix_seq = 10 * ok.t_seq in
      let mix_par = (9 * ok.t_total) + bad.t_total in
      let mix_speedup = float_of_int mix_seq /. float_of_int mix_par in
      (* bar heights read off the paper's figure, approximate *)
      let paper_mix =
        match procs with 1 -> 1.0 | 2 -> 1.8 | 4 -> 3.2 | 6 -> 4.2 | _ -> 5.0
      in
      Printf.printf "%5d | %9.2f %9.2f | %9.2f %10.1f | %9.3f\n" procs
        (Fruntime.Speculative.speedup ok)
        (Fruntime.Speculative.speedup bad)
        mix_speedup paper_mix
        (Fruntime.Speculative.potential_slowdown ok))
    [ 1; 2; 4; 6; 8 ]

(* ------------------------------------------------------------------ *)
(* Fig. 7: speedups, Polaris vs the baseline (PFA stand-in)            *)

let fig7 () =
  section "Fig. 7: speedup on 8 processors, Polaris vs baseline (PFA)";
  Printf.printf "%-8s | %7s %7s | %7s %7s | %s\n" "Program" "Polaris"
    "basel." "paper-P" "paper-B" "winner (paper)";
  Printf.printf "%s\n" (String.make 66 '-');
  let wins = ref 0 and losses = ref 0 in
  List.iter
    (fun (c : Suite.Code.t) ->
      let (tp, rp), (_, rb) = run_both c.source in
      ignore tp;
      let winner =
        if rp.speedup > rb.speedup *. 1.02 then "Polaris"
        else if rb.speedup > rp.speedup *. 1.02 then "PFA"
        else "tie"
      in
      let paper_winner =
        if c.paper_polaris_speedup > c.paper_pfa_speedup *. 1.02 then "Polaris"
        else if c.paper_pfa_speedup > c.paper_polaris_speedup *. 1.02 then "PFA"
        else "tie"
      in
      if winner = "PFA" then incr losses
      else if winner = "Polaris" then incr wins;
      Printf.printf "%-8s | %7.2f %7.2f | %7.1f %7.1f | %s (%s)\n" c.name
        rp.speedup rb.speedup c.paper_polaris_speedup c.paper_pfa_speedup
        winner paper_winner)
    Suite.Registry.all;
  Printf.printf
    "\nPolaris ahead on %d codes, baseline ahead on %d (paper: PFA ahead on 2)\n"
    !wins !losses

(* ------------------------------------------------------------------ *)
(* Coverage: fraction of loops proven parallel per code                *)

let coverage () =
  section "coverage: loops proven parallel per code (paper: \"successful in half of the codes\")";
  Printf.printf "%-8s | %18s | %18s | %s\n" "Program" "polaris par/total"
    "baseline par/total" "polaris speculative";
  Printf.printf "%s\n" (String.make 72 '-');
  let successes = ref 0 in
  List.iter
    (fun (c : Suite.Code.t) ->
      let t = Core.Pipeline.compile (Core.Config.polaris ()) c.source in
      let b = Core.Pipeline.compile (Core.Config.baseline ()) c.source in
      let par x = List.length (Core.Pipeline.parallel_loops x) in
      let tot x = List.length x.Core.Pipeline.loops in
      let spec = List.length (Core.Pipeline.speculative_candidates t) in
      (* the paper counted a code a success when its speedup was
         substantial; use >= 3x on 8 processors as the bar *)
      let _, r = Core.Simulate.compile_and_run (Core.Config.polaris ()) c.source in
      if r.speedup >= 3.0 then incr successes;
      Printf.printf "%-8s | %10d/%-7d | %10d/%-7d | %d\n" c.name (par t)
        (tot t) (par b) (tot b) spec)
    Suite.Registry.all;
  Printf.printf
    "\ncodes with >= 3x simulated speedup under Polaris: %d of 16 (paper: \"half\")\n"
    !successes

(* ------------------------------------------------------------------ *)
(* Translation validation: the full suite through the snapshot oracle   *)

let validate () =
  section
    "validate: per-pass translation validation of all 16 codes (both pipelines)";
  Printf.printf "%-8s %-9s | %6s %6s | %s\n" "Program" "config" "stages"
    "checks" "verdict";
  Printf.printf "%s\n" (String.make 56 '-');
  let failures = ref 0 in
  let dep0 = Dep.Driver.counters_snapshot () in
  List.iter
    (fun (c : Suite.Code.t) ->
      List.iter
        (fun config ->
          let _, report =
            Valid.Snapshot.validated_compile ~procs_list:[ 1; 2; 4; 8 ] config
              c.source
          in
          let checks =
            List.fold_left
              (fun acc (s : Valid.Snapshot.stage_report) ->
                match s.status with
                | Valid.Snapshot.Ok_validated o | Valid.Snapshot.Diverged o ->
                  acc + o.checks
                | _ -> acc)
              0 report.stages
          in
          let verdict =
            match report.failed_stage with
            | None -> "ok"
            | Some s ->
              incr failures;
              "FAIL at " ^ s
          in
          Printf.printf "%-8s %-9s | %6d %6d | %s\n" c.name
            config.Core.Config.name
            (List.length report.stages)
            checks verdict)
        [ Core.Config.polaris (); Core.Config.baseline () ])
    Suite.Registry.all;
  let d =
    let now = Dep.Driver.counters_snapshot () in
    { Dep.Driver.range_proved = now.range_proved - dep0.range_proved;
      range_failed = now.range_failed - dep0.range_failed;
      linear_proved = now.linear_proved - dep0.linear_proved;
      linear_failed = now.linear_failed - dep0.linear_failed;
      unknown = now.unknown - dep0.unknown }
  in
  Printf.printf
    "\ndependence tests during validation: range %d/%d proved, gcd/banerjee %d/%d proved\n"
    d.range_proved
    (d.range_proved + d.range_failed)
    d.linear_proved
    (d.linear_proved + d.linear_failed);
  Printf.printf "validation failures: %d (expected 0)\n" !failures

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks of the compiler itself (bechamel, wall clock)      *)

let micro () =
  section "micro: compiler pass timings (bechamel, wall-clock)";
  let open Bechamel in
  let trfd = (Suite.Registry.find "TRFD").source in
  let bdna = (Suite.Registry.find "BDNA").source in
  let tests =
    Test.make_grouped ~name:"polaris"
      [ Test.make ~name:"parse-trfd"
          (Staged.stage (fun () -> ignore (Frontend.Parser.parse_string trfd)));
        Test.make ~name:"pipeline-polaris-trfd"
          (Staged.stage (fun () ->
               ignore (Core.Pipeline.compile (Core.Config.polaris ()) trfd)));
        Test.make ~name:"pipeline-polaris-bdna"
          (Staged.stage (fun () ->
               ignore (Core.Pipeline.compile (Core.Config.polaris ()) bdna)));
        Test.make ~name:"pipeline-baseline-bdna"
          (Staged.stage (fun () ->
               ignore (Core.Pipeline.compile (Core.Config.baseline ()) bdna))) ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-40s %12.0f ns/run\n" name est
      | _ -> Printf.printf "%-40s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)
(* Perf: compile-time speed of the compiler itself, caches on vs. off  *)

type perf_phases = {
  mutable ph_parse : float;
  mutable ph_passes : float;
  mutable ph_dep : float;
  mutable ph_validate : float;
}

let perf_total ph = ph.ph_parse +. ph.ph_passes +. ph.ph_dep +. ph.ph_validate

(* one code, one iteration: returns (output source, per-loop verdicts)
   and accumulates per-phase wall time.  The dep phase is carved out of
   the pipeline time via Dep.Driver's wall accumulator; "validate" is
   unparsing the result for the cached-vs-uncached identity check. *)
let perf_compile_one cfg (ph : perf_phases) (source : string) =
  let now = Unix.gettimeofday in
  let t0 = now () in
  let p =
    Util.Cachectl.with_enabled cfg.Core.Config.caches (fun () ->
        Frontend.Parser.parse_string source)
  in
  let t1 = now () in
  let dep0 = Dep.Driver.wall_snapshot () in
  let t = Core.Pipeline.run cfg p in
  let t2 = now () in
  let dep_d = Dep.Driver.wall_snapshot () -. dep0 in
  let out = Core.Pipeline.output_source t in
  let verdicts =
    List.map
      (fun (l : Core.Pipeline.loop_result) ->
        ( l.unit_name, l.report.loop_index, l.report.parallel,
          l.report.speculative, l.report.reason ))
      t.loops
  in
  let t3 = now () in
  ph.ph_parse <- ph.ph_parse +. (t1 -. t0);
  ph.ph_passes <- ph.ph_passes +. (t2 -. t1 -. dep_d);
  ph.ph_dep <- ph.ph_dep +. dep_d;
  ph.ph_validate <- ph.ph_validate +. (t3 -. t2);
  (out, verdicts)

(* compile every suite code [n] times under [caches]; returns the phase
   totals, the per-code results of the first iteration, and the cache
   counters.  Asserts that iterations within one mode are identical. *)
let perf_mode ~caches ~n =
  Util.Cachectl.clear_all ();
  let cfg = { (Core.Config.polaris ()) with caches } in
  let ph = { ph_parse = 0.; ph_passes = 0.; ph_dep = 0.; ph_validate = 0. } in
  let first : (string * (string * (string * string * bool * bool * string) list)) list ref = ref [] in
  for iter = 1 to n do
    List.iter
      (fun (c : Suite.Code.t) ->
        let result = perf_compile_one cfg ph c.source in
        if iter = 1 then first := (c.name, result) :: !first
        else if List.assoc c.name !first <> result then (
          Printf.eprintf
            "perf: %s: iteration %d differs from iteration 1 (caches %b)\n"
            c.name iter caches;
          exit 1))
      Suite.Registry.all
  done;
  (ph, List.rev !first, Util.Cachectl.snapshot ())

let perf ?(n = 5) () =
  section
    (Printf.sprintf
       "perf: compile the 16-code suite %dx, caches on vs. POLARIS_NO_CACHE \
        baseline" n);
  let uncached, base_results, _ = perf_mode ~caches:false ~n in
  let cached, cached_results, cache_stats = perf_mode ~caches:true ~n in
  (* the whole point: the caches must be invisible in the output *)
  let divergent =
    List.filter
      (fun (name, result) -> List.assoc name cached_results <> result)
      base_results
  in
  List.iter
    (fun (name, _) ->
      Printf.eprintf "perf: DIVERGENCE on %s: cached and uncached compiles \
                      disagree\n" name)
    divergent;
  let identical = divergent = [] in
  let speedup = perf_total uncached /. perf_total cached in
  Printf.printf "%-10s | %10s %10s\n" "phase" "uncached" "cached";
  Printf.printf "%s\n" (String.make 36 '-');
  let row name f =
    Printf.printf "%-10s | %9.1fms %9.1fms\n" name (1000. *. f uncached)
      (1000. *. f cached)
  in
  row "parse" (fun p -> p.ph_parse);
  row "passes" (fun p -> p.ph_passes);
  row "dep" (fun p -> p.ph_dep);
  row "validate" (fun p -> p.ph_validate);
  row "total" perf_total;
  Printf.printf "\ncache counters (cached mode):\n";
  List.iter
    (fun (name, hits, misses) ->
      Printf.printf "  %-22s %8d hits %8d misses\n" name hits misses)
    cache_stats;
  (* a cache that never hits is dead weight — a key-design bug (as the
     original generation+sid env_at key was), not a tuning matter *)
  let dead =
    List.filter (fun (_, hits, misses) -> hits = 0 && misses > 0) cache_stats
  in
  List.iter
    (fun (name, _, misses) ->
      Printf.eprintf "perf: DEAD CACHE %s: 0 hits in %d lookups\n" name misses)
    dead;
  if dead <> [] then exit 1;
  Printf.printf "\noutputs byte-identical, verdicts identical: %b\n" identical;
  Printf.printf "end-to-end compile speedup: %.2fx\n" speedup;
  let json =
    let open Valid.Trace.Json in
    let phases p =
      obj
        [ ("parse_s", float p.ph_parse);
          ("passes_s", float p.ph_passes);
          ("dep_s", float p.ph_dep);
          ("validate_s", float p.ph_validate);
          ("total_wall_s", float (perf_total p)) ]
    in
    obj
      [ ("iterations", int n);
        ("codes", int (List.length Suite.Registry.all));
        ("uncached", phases uncached);
        ("cached", phases cached);
        ("caches", Valid.Trace.cache_json cache_stats);
        ("speedup", float speedup);
        ("identical_output", bool identical) ]
  in
  let oc = open_out "BENCH_compile.json" in
  output_string oc json;
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_compile.json\n";
  if not identical then exit 1

(* ------------------------------------------------------------------ *)
(* Scale: multicore compilation — byte-identity and wall clock vs -j   *)

(* one full compile of one source; returns everything observable:
   the annotated output source, the per-loop verdicts (loop_sid
   excluded: statement ids depend on allocation order across domains
   and carry no meaning beyond uniqueness) and the incident list *)
let scale_compile ?observer cfg (source : string) =
  let t = Core.Pipeline.compile ?observer cfg source in
  ( Core.Pipeline.output_source t,
    List.map
      (fun (l : Core.Pipeline.loop_result) ->
        ( l.unit_name, l.report.loop_index, l.report.parallel,
          l.report.speculative, l.report.reason ))
      t.loops,
    List.map
      (fun (i : Core.Pipeline.incident) ->
        (i.inc_pass, i.inc_reason, i.inc_rolled_back, i.inc_disabled))
      t.incidents )

let scale ?(n = 3) () =
  section
    (Printf.sprintf
       "scale: compile the 16-code suite %dx at -j 1/2/4/8 — byte-identity \
        and wall clock" n);
  let cfg = Core.Config.polaris () in
  let job_counts = [ 1; 2; 4; 8 ] in
  let results =
    List.map
      (fun jobs ->
        Util.Pool.with_jobs jobs (fun () ->
            Util.Cachectl.clear_all ();
            (* per-pass wall clock through the pipeline observer (the
               first event, "parse", absorbs frontend + setup time) and
               the work-stealing scheduler's own telemetry *)
            let phases : (string * float ref) list ref = ref [] in
            let sched0 = Util.Pool.counters () in
            let t0 = Unix.gettimeofday () in
            let sigs = ref [] in
            for iter = 1 to n do
              List.iter
                (fun (c : Suite.Code.t) ->
                  let last = ref (Unix.gettimeofday ()) in
                  let observer p _ =
                    let now = Unix.gettimeofday () in
                    (match List.assoc_opt p !phases with
                    | Some r -> r := !r +. (now -. !last)
                    | None -> phases := !phases @ [ (p, ref (now -. !last)) ]);
                    last := now
                  in
                  let s = scale_compile ~observer cfg c.source in
                  if iter = 1 then sigs := (c.name, s) :: !sigs)
                Suite.Registry.all
            done;
            let wall = Unix.gettimeofday () -. t0 in
            let sched =
              Util.Pool.counters_delta ~base:sched0 (Util.Pool.counters ())
            in
            let phases = List.map (fun (p, r) -> (p, !r)) !phases in
            (jobs, wall, List.rev !sigs, phases, sched)))
      job_counts
  in
  let _, wall1, sigs1, _, _ =
    List.find (fun (jobs, _, _, _, _) -> jobs = 1) results
  in
  let divergences = ref [] in
  List.iter
    (fun (jobs, _, sigs, _, _) ->
      if jobs <> 1 then
        List.iter
          (fun (name, s) ->
            if List.assoc name sigs1 <> s then
              divergences := (jobs, name) :: !divergences)
          sigs)
    results;
  List.iter
    (fun (jobs, name) ->
      Printf.eprintf
        "scale: DIVERGENCE on %s at -j %d: output/verdicts/incidents differ \
         from -j 1\n"
        name jobs)
    !divergences;
  let identical = !divergences = [] in
  Printf.printf "%5s | %10s %8s | %7s %7s %7s %7s %7s\n" "jobs" "wall"
    "speedup" "batches" "inline" "tasks" "chunks" "steals";
  Printf.printf "%s\n" (String.make 76 '-');
  List.iter
    (fun (jobs, wall, _, _, (s : Util.Pool.counters)) ->
      Printf.printf "%5d | %9.2fs %7.2fx | %7d %7d %7d %7d %7d\n" jobs wall
        (wall1 /. wall) s.c_batches s.c_inline s.c_tasks s.c_chunks s.c_steals)
    results;
  (* where the time goes, per pass, at the extremes of the -j range *)
  let phase_row jobs =
    let _, _, _, phases, _ =
      List.find (fun (j, _, _, _, _) -> j = jobs) results
    in
    phases
  in
  let p1 = phase_row 1 and p8 = phase_row (List.hd (List.rev job_counts)) in
  Printf.printf "\n%-14s | %10s %10s\n" "phase" "-j 1"
    (Printf.sprintf "-j %d" (List.hd (List.rev job_counts)));
  Printf.printf "%s\n" (String.make 40 '-');
  List.iter
    (fun (p, w1) ->
      let w8 = Option.value ~default:0.0 (List.assoc_opt p p8) in
      Printf.printf "%-14s | %9.2fs %9.2fs\n" p w1 w8)
    p1;
  Printf.printf "\nhost cores (recommended domain count): %d\n"
    (Domain.recommended_domain_count ());
  Printf.printf "outputs/verdicts/incidents identical across -j: %b\n" identical;
  let json =
    let open Valid.Trace.Json in
    obj
      [ ("iterations", int n);
        ("codes", int (List.length Suite.Registry.all));
        ("host_cores", int (Domain.recommended_domain_count ()));
        ( "runs",
          arr
            (List.map
               (fun (jobs, wall, _, phases, (s : Util.Pool.counters)) ->
                 obj
                   [ ("jobs", int jobs);
                     ("wall_s", float wall);
                     ("speedup", float (wall1 /. wall));
                     ( "phases",
                       arr
                         (List.map
                            (fun (p, w) ->
                              obj
                                [ ("pass", str p); ("wall_s", float w) ])
                            phases) );
                     ( "scheduler",
                       obj
                         [ ("batches", int s.c_batches);
                           ("inline", int s.c_inline);
                           ("tasks", int s.c_tasks);
                           ("chunks", int s.c_chunks);
                           ("steals", int s.c_steals) ] ) ])
               results) );
        ("identical_output", bool identical) ]
  in
  let oc = open_out "BENCH_scale.json" in
  output_string oc json;
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_scale.json\n";
  if not identical then exit 1

(* ------------------------------------------------------------------ *)
(* Incremental: serve-style session — cold suite, then one-unit edits  *)

(* the canonical single-unit edit: a CONTINUE spliced in just before the
   final END line, so exactly one program unit reparses to different IR
   while every other unit (and every other code) is textually unchanged *)
let inject_continue (source : string) : string =
  let lines = String.split_on_char '\n' source in
  let last_end =
    List.fold_left
      (fun (i, best) line ->
        (i + 1, if String.trim line = "END" then Some i else best))
      (0, None) lines
    |> snd
  in
  match last_end with
  | None -> failwith "inject_continue: no END line"
  | Some at ->
    List.mapi (fun i l -> if i = at then "      CONTINUE\n" ^ l else l) lines
    |> String.concat "\n"

let incremental ?(min_reuse = 0.70) () =
  section
    "incremental: one serve session — cold 16-code suite, then one \
     single-unit edit per code, full-suite recompiles";
  let cfg = Core.Config.polaris () in
  let now = Unix.gettimeofday in
  let aggregate results =
    let hits =
      List.fold_left
        (fun a (_, _, (r : Core.Incremental.result)) -> a + r.stats.st_hits)
        0 results
    in
    let lookups =
      List.fold_left
        (fun a (_, _, (r : Core.Incremental.result)) -> a + r.stats.st_lookups)
        0 results
    in
    (hits, lookups,
     if lookups = 0 then 0.0 else float_of_int hits /. float_of_int lookups)
  in
  (* cold: the session's first compile of every code *)
  Util.Cachectl.clear_all ();
  let t0 = now () in
  let cold =
    List.map
      (fun (c : Suite.Code.t) ->
        (c.name, c.source, Core.Incremental.compile cfg c.source))
      Suite.Registry.all
  in
  let cold_wall = now () -. t0 in
  let _, _, cold_rate = aggregate cold in
  Printf.printf "cold suite compile: %.2fs, %.1f%% analysis reuse (intra-compile)\n\n"
    cold_wall (100.0 *. cold_rate);
  (* edit steps: edit one code, recompile the whole suite incrementally *)
  Printf.printf "%-8s | %9s %18s | %s\n" "edited" "wall" "suite reuse"
    "edited-code reuse";
  Printf.printf "%s\n" (String.make 64 '-');
  let steps =
    List.map
      (fun (c : Suite.Code.t) ->
        let edited = inject_continue c.source in
        let t0 = now () in
        let results =
          List.map
            (fun (d : Suite.Code.t) ->
              let src = if d.name = c.name then edited else d.source in
              (d.name, src, Core.Incremental.compile cfg src))
            Suite.Registry.all
        in
        let wall = now () -. t0 in
        let hits, lookups, rate = aggregate results in
        let _, _, (edited_r : Core.Incremental.result) =
          List.find (fun (n, _, _) -> n = c.name) results
        in
        Printf.printf "%-8s | %8.3fs %6.1f%% (%d/%d) | %5.1f%%\n" c.name wall
          (100.0 *. rate) hits lookups
          (100.0 *. edited_r.stats.st_reuse_rate);
        (c.name, edited, results, wall, rate, lookups))
      Suite.Registry.all
  in
  (* byte-identity, two ways.  (a) every unchanged code's warm outcome
     must equal its cold outcome; (b) every edited code's incremental
     outcome must equal a from-scratch compile of the edited source.
     The scratch compiles clear the session caches, so they run after
     all reuse measurements. *)
  let divergences = ref [] in
  List.iter
    (fun (edited_name, _, results, _, _, _) ->
      List.iter
        (fun (name, _, (r : Core.Incremental.result)) ->
          if name <> edited_name then
            let _, _, (c : Core.Incremental.result) =
              List.find (fun (n, _, _) -> n = name) cold
            in
            List.iter
              (fun d ->
                divergences :=
                  Printf.sprintf "%s (unchanged, %s edited): %s" name
                    edited_name d
                  :: !divergences)
              (Core.Incremental.diverges ~incremental:r.outcome
                 ~scratch:c.outcome))
        results)
    steps;
  List.iter
    (fun (name, edited, results, _, _, _) ->
      let _, _, (r : Core.Incremental.result) =
        List.find (fun (n, _, _) -> n = name) results
      in
      let s = Core.Incremental.scratch cfg edited in
      List.iter
        (fun d ->
          divergences :=
            Printf.sprintf "%s (edited, vs scratch): %s" name d :: !divergences)
        (Core.Incremental.diverges ~incremental:r.outcome ~scratch:s.outcome))
    steps;
  let divergences = List.rev !divergences in
  List.iter (fun d -> Printf.eprintf "incremental: DIVERGENCE %s\n" d)
    divergences;
  let walls = List.map (fun (_, _, _, w, _, _) -> w) steps in
  let rates = List.map (fun (_, _, _, _, r, _) -> r) steps in
  let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
  let min_rate = List.fold_left min 1.0 rates in
  let zero_lookups =
    List.exists (fun (_, _, _, _, _, l) -> l = 0) steps
  in
  let ok = divergences = [] && min_rate >= min_reuse && not zero_lookups in
  Printf.printf
    "\nedit recompile: mean %.3fs (cold suite %.3fs, %.1fx), reuse min \
     %.1f%% / mean %.1f%% (floor %.0f%%)\n"
    (mean walls) cold_wall (cold_wall /. mean walls)
    (100.0 *. min_rate) (100.0 *. mean rates) (100.0 *. min_reuse);
  Printf.printf "byte-identical to from-scratch compiles: %b\n"
    (divergences = []);
  let json =
    let open Valid.Trace.Json in
    obj
      [ ("codes", int (List.length Suite.Registry.all));
        ("cold_wall_s", float cold_wall);
        ("cold_reuse_rate", float cold_rate);
        ("min_reuse_floor", float min_reuse);
        ( "edits",
          arr
            (List.map
               (fun (name, _, _, wall, rate, lookups) ->
                 obj
                   [ ("edited", str name);
                     ("wall_s", float wall);
                     ("suite_reuse_rate", float rate);
                     ("analysis_lookups", int lookups) ])
               steps) );
        ("mean_edit_wall_s", float (mean walls));
        ("min_suite_reuse_rate", float min_rate);
        ("mean_suite_reuse_rate", float (mean rates));
        ("divergences", arr (List.map str divergences));
        ("identical_output", bool (divergences = [])) ]
  in
  let oc = open_out "BENCH_incremental.json" in
  output_string oc json;
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_incremental.json\n";
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* Daemon: multi-client sessions sharing one persistent store          *)

(* Replay a multi-client trace against a real daemon over a real unix
   socket: [sessions] concurrent client connections each compile the
   16-code suite (rotated so the sessions collide on different codes at
   different times), twice — once against an empty store (cold) and
   once against a freshly restarted daemon whose in-memory caches were
   dropped, so every warm fact must come through the persistent store.
   Every response of both phases must be byte-identical to a
   from-scratch compile, and the warm phase must serve at least half
   its shared-cache lookups from the store-backed caches. *)

let rotate k xs =
  let n = List.length xs in
  List.init n (fun i -> List.nth xs ((i + k) mod n))

(* one client session: connect, compile every code in [order], return
   the labelled replies in request order *)
let daemon_session ~socket order =
  match Serve.Client.connect socket with
  | Error m -> Error m
  | Ok c ->
    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (code : Suite.Code.t) :: rest -> (
        match
          Serve.Client.compile_source c ~label:code.name code.source
        with
        | Ok reply -> go ((code.name, reply) :: acc) rest
        | Error m -> Error (code.name ^ ": " ^ m))
    in
    go [] order

(* one daemon lifetime serving one full trace; returns the replies of
   every session plus the phase wall time *)
let daemon_phase ?(max_inflight = 1) ~sessions ~socket ~store_dir () =
  let stop = Atomic.make false in
  let ready = Atomic.make false in
  let cfg =
    { (Serve.Daemon.default_cfg ()) with
      d_socket = socket;
      d_store_dir = Some store_dir;
      d_max_inflight = max_inflight;
      d_poll_s = 0.02 }
  in
  let daemon =
    Domain.spawn (fun () ->
        Serve.Daemon.run ~stop ~on_ready:(fun () -> Atomic.set ready true) cfg)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.005
  done;
  let t0 = Unix.gettimeofday () in
  let clients =
    List.init sessions (fun s ->
        let order = rotate (s * 4) Suite.Registry.all in
        Domain.spawn (fun () -> daemon_session ~socket order))
  in
  let results = List.map Domain.join clients in
  let wall = Unix.gettimeofday () -. t0 in
  Atomic.set stop true;
  let report = Domain.join daemon in
  let replies =
    List.concat_map
      (function
        | Ok rs -> rs
        | Error m ->
          Printf.eprintf "daemon bench: session failed: %s\n" m;
          exit 1)
      results
  in
  (replies, wall, report)

let phase_metrics replies wall =
  let lat = Serve.Metrics.recorder () in
  List.iter
    (fun (_, (r : Serve.Protocol.compile_reply)) ->
      Serve.Metrics.add lat (r.co_wall_ms /. 1000.0))
    replies;
  let hits =
    List.fold_left (fun a (_, (r : Serve.Protocol.compile_reply)) ->
        a + r.co_shared_hits) 0 replies
  in
  let lookups =
    List.fold_left (fun a (_, (r : Serve.Protocol.compile_reply)) ->
        a + r.co_shared_lookups) 0 replies
  in
  let n = List.length replies in
  ( n, wall,
    (if wall > 0.0 then float_of_int n /. wall else 0.0),
    1000.0 *. Serve.Metrics.percentile lat 50.0,
    1000.0 *. Serve.Metrics.percentile lat 95.0,
    1000.0 *. Serve.Metrics.mean lat,
    hits, lookups, Serve.Metrics.rate_of hits lookups )

let daemon_bench ?(sessions = 4) ?(min_warm_rate = 0.5) () =
  section
    (Printf.sprintf
       "daemon: %d concurrent client sessions x 16-code suite, cold store \
        vs. daemon restarted on the persisted store" sessions);
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "polaris-bench-daemon"
  in
  let store_dir = Filename.concat dir "store" in
  let socket = Filename.concat dir "bench.sock" in
  (if not (Sys.file_exists dir) then Unix.mkdir dir 0o755);
  (* cold means cold: no store file, no warm in-memory tables *)
  let store_file = Filename.concat store_dir "analysis.store" in
  if Sys.file_exists store_file then Sys.remove store_file;
  Util.Cachectl.clear_all ();
  let cold_replies, cold_wall, _ =
    daemon_phase ~sessions ~socket ~store_dir ()
  in
  (* daemon restart: a new process would start with empty tables and
     only the store file; dropping every in-memory cache simulates
     exactly that within this one *)
  Util.Cachectl.clear_all ();
  let warm_replies, warm_wall, warm_report =
    daemon_phase ~sessions ~socket ~store_dir ()
  in
  (* concurrent dispatch: the same trace cold again, but with
     --max-inflight 4 so compiles from different sessions overlap; the
     serialized cold phase above is its baseline *)
  let conc_inflight = 4 in
  let conc_store = Filename.concat dir "store-conc" in
  let conc_file = Filename.concat conc_store "analysis.store" in
  if Sys.file_exists conc_file then Sys.remove conc_file;
  Util.Cachectl.clear_all ();
  let conc_replies, conc_wall, _ =
    daemon_phase ~max_inflight:conc_inflight ~sessions ~socket
      ~store_dir:conc_store ()
  in
  (* byte-identity: every response of both phases against a from-scratch
     compile of the same code (scratch clears the shared caches, so it
     runs only after the daemons are down) *)
  Util.Cachectl.clear_all ();
  let cfg = Core.Config.polaris ~procs:8 () in
  let scratch =
    List.map
      (fun (c : Suite.Code.t) ->
        let r = Core.Incremental.scratch cfg c.source in
        ( c.name,
          (r.outcome.oc_output, Serve.Local.render_verdicts r.outcome) ))
      Suite.Registry.all
  in
  let divergences = ref [] in
  let check_phase phase replies =
    List.iter
      (fun (name, (r : Serve.Protocol.compile_reply)) ->
        let out, verdicts = List.assoc name scratch in
        if r.co_output <> out then
          divergences := Printf.sprintf "%s (%s): output differs" name phase
            :: !divergences;
        if r.co_verdicts <> verdicts then
          divergences := Printf.sprintf "%s (%s): verdicts differ" name phase
            :: !divergences;
        if r.co_check_divergences <> [] then
          divergences :=
            Printf.sprintf "%s (%s): server-side check" name phase
            :: !divergences)
      replies
  in
  check_phase "cold" cold_replies;
  check_phase "warm" warm_replies;
  check_phase "conc" conc_replies;
  let divergences = List.rev !divergences in
  List.iter (fun d -> Printf.eprintf "daemon bench: DIVERGENCE %s\n" d)
    divergences;
  let ( cold_n, _, cold_rps, cold_p50, cold_p95, cold_mean, _, _, cold_rate )
      =
    phase_metrics cold_replies cold_wall
  in
  let ( warm_n, _, warm_rps, warm_p50, warm_p95, warm_mean, warm_hits,
        warm_lookups, warm_rate ) =
    phase_metrics warm_replies warm_wall
  in
  let ( conc_n, _, conc_rps, conc_p50, conc_p95, conc_mean, _, _, conc_rate )
      =
    phase_metrics conc_replies conc_wall
  in
  Printf.printf "%-6s | %4s %8s %8s | %9s %9s %9s | %s\n" "phase" "reqs"
    "wall" "req/s" "p50" "p95" "mean" "shared reuse";
  Printf.printf "%s\n" (String.make 78 '-');
  Printf.printf "%-6s | %4d %7.2fs %8.1f | %7.2fms %7.2fms %7.2fms | %5.1f%%\n"
    "cold" cold_n cold_wall cold_rps cold_p50 cold_p95 cold_mean
    (100.0 *. cold_rate);
  Printf.printf "%-6s | %4d %7.2fs %8.1f | %7.2fms %7.2fms %7.2fms | %5.1f%% (%d/%d)\n"
    "warm" warm_n warm_wall warm_rps warm_p50 warm_p95 warm_mean
    (100.0 *. warm_rate) warm_hits warm_lookups;
  Printf.printf "%-6s | %4d %7.2fs %8.1f | %7.2fms %7.2fms %7.2fms | %5.1f%%\n"
    "conc" conc_n conc_wall conc_rps conc_p50 conc_p95 conc_mean
    (100.0 *. conc_rate);
  Printf.printf
    "\nwarm shared-cache hit rate %.1f%% (floor %.0f%%), responses \
     byte-identical to scratch: %b\n"
    (100.0 *. warm_rate) (100.0 *. min_warm_rate) (divergences = []);
  Printf.printf
    "concurrent dispatch (--max-inflight %d) vs serialized cold: %.2fx on \
     %d core(s)\n"
    conc_inflight
    (if conc_wall > 0.0 then cold_wall /. conc_wall else 0.0)
    (Domain.recommended_domain_count ());
  let ok = divergences = [] && warm_rate >= min_warm_rate in
  let json =
    let open Valid.Trace.Json in
    let phase (n, wall, rps, p50, p95, mean, hits, lookups, rate) =
      obj
        [ ("requests", int n);
          ("wall_s", float wall);
          ("req_per_s", float rps);
          ("p50_ms", float p50);
          ("p95_ms", float p95);
          ("mean_ms", float mean);
          ("shared_hits", int hits);
          ("shared_lookups", int lookups);
          ("shared_hit_rate", float rate) ]
    in
    obj
      [ ("sessions", int sessions);
        ("codes", int (List.length Suite.Registry.all));
        ( "cold",
          phase
            ( cold_n, cold_wall, cold_rps, cold_p50, cold_p95, cold_mean, 0, 0,
              cold_rate ) );
        ( "warm",
          phase
            ( warm_n, warm_wall, warm_rps, warm_p50, warm_p95, warm_mean,
              warm_hits, warm_lookups, warm_rate ) );
        ( "concurrent",
          phase
            ( conc_n, conc_wall, conc_rps, conc_p50, conc_p95, conc_mean, 0,
              0, conc_rate ) );
        ("concurrent_max_inflight", int conc_inflight);
        ( "concurrent_speedup_vs_cold",
          float (if conc_wall > 0.0 then cold_wall /. conc_wall else 0.0) );
        ("host_cores", int (Domain.recommended_domain_count ()));
        ("min_warm_hit_rate", float min_warm_rate);
        ("warm_server_stats", warm_report.Serve.Daemon.r_stats_json);
        ("divergences", arr (List.map str divergences));
        ("identical_output", bool (divergences = [])) ]
  in
  let oc = open_out "BENCH_daemon.json" in
  output_string oc json;
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_daemon.json\n";
  Util.Cachectl.clear_all ();
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* Storm: overload protection under hostile concurrency               *)

(* two small codes for the chaos lane: the network-fault sweep needs
   byte-exact expectations computed before the daemon starts *)
let storm_smoke_source =
  "      PROGRAM SMOKE\n\
   \      INTEGER I, N\n\
   \      PARAMETER (N = 16)\n\
   \      REAL A(16), B(16)\n\
   \      DO I = 1, N\n\
   \        A(I) = I * 2.0\n\
   \      ENDDO\n\
   \      DO I = 1, N\n\
   \        B(I) = A(I) + 1.0\n\
   \      ENDDO\n\
   \      PRINT *, B(1)\n\
   \      END\n"

let storm_reduce_source =
  "      PROGRAM REDUCE\n\
   \      INTEGER I\n\
   \      REAL S, A(32)\n\
   \      DO I = 1, 32\n\
   \        A(I) = I * 1.5\n\
   \      ENDDO\n\
   \      S = 0.0\n\
   \      DO I = 1, 32\n\
   \        S = S + A(I)\n\
   \      ENDDO\n\
   \      PRINT *, S\n\
   \      END\n"

(* a client from hell: opens a session, sends half a frame, and goes
   silent holding its slot.  The daemon's idle eviction must reclaim
   it; nobody else may wait on it. *)
let storm_stall ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let wire =
    Serve.Protocol.frame (Serve.Protocol.encode_request Serve.Protocol.Stats)
  in
  ignore (Unix.write_substring fd wire 0 (String.length wire / 2));
  fd

(* the storm: [clients] honest sessions hammer the full suite through
   per-request connections (fresh connect + retry on Busy), one client
   stalls mid-frame, one runs the seeded network-fault transport — all
   against a daemon whose admission cap is far below the offered load.
   The daemon must shed (Busy), evict the staller, keep queued response
   bytes bounded, and still answer every honest request with bytes
   identical to a from-scratch compile. *)
let storm ?(clients = 6) () =
  section
    (Printf.sprintf
       "storm: %d honest clients + 1 stalled + 1 chaos transport vs. a \
        daemon capped at 4 sessions" clients);
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "polaris-bench-storm"
  in
  (if not (Sys.file_exists dir) then Unix.mkdir dir 0o755);
  let socket = Filename.concat dir "storm.sock" in
  let max_sessions = 4 and max_wbuf = 1 lsl 20 in
  (* chaos expectations first: the from-scratch compiles clear the
     shared caches, so they must not race the daemon *)
  Util.Cachectl.clear_all ();
  let chaos_sources =
    [ ("smoke", storm_smoke_source); ("reduce", storm_reduce_source) ]
  in
  let config = Core.Config.polaris ~procs:8 () in
  let chaos_expected = Serve.Chaosnet.expected_outputs config chaos_sources in
  Util.Cachectl.clear_all ();
  let stop = Atomic.make false in
  let ready = Atomic.make false in
  let cfg =
    { (Serve.Daemon.default_cfg ()) with
      d_socket = socket;
      d_store_dir = None;
      d_poll_s = 0.01;
      d_max_sessions = max_sessions;
      d_max_wbuf = max_wbuf;
      d_idle_timeout_s = 1.0 }
  in
  let daemon =
    Domain.spawn (fun () ->
        Serve.Daemon.run ~stop ~on_ready:(fun () -> Atomic.set ready true) cfg)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.005
  done;
  let t0 = Unix.gettimeofday () in
  let stalled_fd = storm_stall ~socket in
  let honest =
    List.init clients (fun s ->
        let order = rotate (s * 3) Suite.Registry.all in
        Domain.spawn (fun () ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | (code : Suite.Code.t) :: rest -> (
                match
                  Serve.Client.compile_retry ~retries:40 ~deadline_s:60.0
                    ~socket ~label:code.name code.source
                with
                | Ok reply -> go ((code.name, reply) :: acc) rest
                | Error m -> Error (code.name ^ ": " ^ m))
            in
            go [] order))
  in
  let chaos_lane =
    Domain.spawn (fun () ->
        Serve.Chaosnet.run_sweep ~first_seed:1 ~seeds:10 ~retries:16
          ~deadline_s:5.0 ~socket ~expected:chaos_expected chaos_sources)
  in
  let results = List.map Domain.join honest in
  let sweep = Domain.join chaos_lane in
  let wall = Unix.gettimeofday () -. t0 in
  (* the staller must have been evicted: its fd sees EOF, not silence *)
  let evicted_observed =
    match Unix.select [ stalled_fd ] [] [] 10.0 with
    | [ _ ], _, _ -> Unix.read stalled_fd (Bytes.create 1) 0 1 = 0
    | _ -> false
  in
  (try Unix.close stalled_fd with Unix.Unix_error _ -> ());
  Atomic.set stop true;
  let report = Domain.join daemon in
  let replies =
    List.concat_map
      (function
        | Ok rs -> rs
        | Error m ->
          Printf.eprintf "storm: honest session failed: %s\n" m;
          exit 1)
      results
  in
  (* byte-identity against from-scratch compiles (daemon is down, the
     scratch compiles may clear the shared caches now) *)
  Util.Cachectl.clear_all ();
  let scratch =
    List.map
      (fun (c : Suite.Code.t) ->
        let r = Core.Incremental.scratch config c.source in
        (c.name, (r.outcome.oc_output, Serve.Local.render_verdicts r.outcome)))
      Suite.Registry.all
  in
  let divergences = ref [] in
  List.iter
    (fun (name, (r : Serve.Protocol.compile_reply)) ->
      let out, verdicts = List.assoc name scratch in
      if r.co_output <> out then
        divergences := (name ^ ": output differs") :: !divergences;
      if r.co_verdicts <> verdicts then
        divergences := (name ^ ": verdicts differ") :: !divergences)
    replies;
  let divergences = List.rev !divergences in
  List.iter (fun d -> Printf.eprintf "storm: DIVERGENCE %s\n" d) divergences;
  let n = List.length replies in
  let pending_bound = max_sessions * max_wbuf in
  let bounded = report.Serve.Daemon.r_max_pending <= pending_bound in
  Printf.printf "%d honest requests in %.2fs (%.1f req/s)\n" n wall
    (if wall > 0.0 then float_of_int n /. wall else 0.0);
  Printf.printf
    "shed %d, evicted idle %d / slow %d, peak queued response bytes %d \
     (bound %d)\n"
    report.r_shed report.r_evicted_idle report.r_evicted_slow
    report.r_max_pending pending_bound;
  Printf.printf
    "chaos lane: %d compiles, %d converged, %d mismatched, %d gave up\n"
    sweep.Serve.Chaosnet.sw_compiles sweep.sw_converged sweep.sw_mismatched
    sweep.sw_gave_up;
  Printf.printf "staller evicted (EOF observed): %b\n" evicted_observed;
  Printf.printf "responses byte-identical to scratch: %b\n"
    (divergences = []);
  let ok =
    divergences = [] && report.r_graceful && report.r_shed >= 1
    && report.r_evicted_idle >= 1 && evicted_observed && bounded
    && sweep.sw_mismatched = 0 && sweep.sw_gave_up = 0
  in
  let json =
    let open Valid.Trace.Json in
    obj
      [ ("clients", int clients);
        ("max_sessions", int max_sessions);
        ("requests", int n);
        ("wall_s", float wall);
        ( "req_per_s",
          float (if wall > 0.0 then float_of_int n /. wall else 0.0) );
        ("shed", int report.r_shed);
        ("evicted_idle", int report.r_evicted_idle);
        ("evicted_slow", int report.r_evicted_slow);
        ("max_pending_bytes", int report.r_max_pending);
        ("pending_bound_bytes", int pending_bound);
        ("staller_evicted", bool evicted_observed);
        ("chaos", Serve.Chaosnet.sweep_json sweep);
        ("graceful", bool report.r_graceful);
        ("identical_output", bool (divergences = [])) ]
  in
  let oc = open_out "BENCH_storm.json" in
  output_string oc json;
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_storm.json\n";
  Util.Cachectl.clear_all ();
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* Chaosnet: the 100-seed network-fault sweep, standalone              *)

let chaosnet ?(seeds = 100) () =
  section
    (Printf.sprintf
       "chaosnet: %d-seed network-fault sweep (flips, tears, drops, \
        delays) against a live daemon" seeds);
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "polaris-bench-chaosnet"
  in
  (if not (Sys.file_exists dir) then Unix.mkdir dir 0o755);
  let socket = Filename.concat dir "chaosnet.sock" in
  let sources =
    [ ("smoke", storm_smoke_source); ("reduce", storm_reduce_source) ]
  in
  Util.Cachectl.clear_all ();
  let config = Core.Config.polaris ~procs:8 () in
  let expected = Serve.Chaosnet.expected_outputs config sources in
  let stop = Atomic.make false in
  let ready = Atomic.make false in
  (* the short idle timeout is the designed unstick for a flipped
     length field that leaves the daemon holding a half frame *)
  let cfg =
    { (Serve.Daemon.default_cfg ()) with
      d_socket = socket;
      d_store_dir = None;
      d_poll_s = 0.01;
      d_idle_timeout_s = 0.3 }
  in
  let daemon =
    Domain.spawn (fun () ->
        Serve.Daemon.run ~stop ~on_ready:(fun () -> Atomic.set ready true) cfg)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.005
  done;
  let t0 = Unix.gettimeofday () in
  let sweep =
    Serve.Chaosnet.run_sweep ~first_seed:1 ~seeds ~retries:16 ~deadline_s:5.0
      ~socket ~expected sources
  in
  let wall = Unix.gettimeofday () -. t0 in
  Atomic.set stop true;
  let report = Domain.join daemon in
  Printf.printf
    "seeds %d | compiles %d converged %d mismatched %d gave up %d\n"
    sweep.Serve.Chaosnet.sw_seeds sweep.sw_compiles sweep.sw_converged
    sweep.sw_mismatched sweep.sw_gave_up;
  Printf.printf "faults injected: %d flips, %d drops, %d tears, %d delays\n"
    sweep.sw_flips sweep.sw_drops sweep.sw_tears sweep.sw_delays;
  Printf.printf "wall %.2fs, daemon graceful: %b\n" wall
    report.Serve.Daemon.r_graceful;
  let ok =
    report.r_graceful && sweep.sw_mismatched = 0 && sweep.sw_gave_up = 0
    && sweep.sw_converged = sweep.sw_compiles
  in
  let json =
    let open Valid.Trace.Json in
    obj
      [ ("wall_s", float wall);
        ("sweep", Serve.Chaosnet.sweep_json sweep);
        ("graceful", bool report.r_graceful);
        ("converged_all", bool ok) ]
  in
  let oc = open_out "BENCH_chaosnet.json" in
  output_string oc json;
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_chaosnet.json\n";
  Util.Cachectl.clear_all ();
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* Ablation: Polaris minus one technique                               *)

let ablation () =
  section "ablation: Polaris minus one technique (speedup on 8 procs)";
  let configs =
    [ Core.Config.polaris ();
      Core.Config.without_inline ();
      Core.Config.without_generalized_induction ();
      Core.Config.baseline () ]
  in
  Printf.printf "%-8s |" "Program";
  List.iter (fun (c : Core.Config.t) -> Printf.printf " %-18s" c.name) configs;
  Printf.printf "\n%s\n" (String.make 90 '-');
  List.iter
    (fun name ->
      let c = Suite.Registry.find name in
      Printf.printf "%-8s |" c.name;
      List.iter
        (fun cfg ->
          let _, r = Core.Simulate.compile_and_run cfg c.source in
          Printf.printf " %-18.2f" r.speedup)
        configs;
      Printf.printf "\n")
    [ "TRFD"; "OCEAN"; "ARC2D"; "TFFT2"; "MDG" ]

(* ------------------------------------------------------------------ *)
(* Chaos: fault-injection resilience of the fail-safe pipeline         *)

let chaos () =
  section
    "chaos: seeded fault injection (exceptions, IR corruption, budget \
     exhaustion)";
  let sources = Valid.Chaos.default_sources () in
  let sweep =
    Valid.Chaos.run_sweep ~procs_list:[ 4 ] ~first_seed:1 ~n:100 sources
  in
  Printf.printf
    "seeds run            : %d\nfaults contained     : %d\ncontract failures    : %d\nstrict-mode failures : %d\n"
    sweep.sw_seeds sweep.sw_contained
    (List.length sweep.sw_failures)
    (List.length sweep.sw_strict_failures);
  List.iter
    (fun o -> Fmt.pr "  %a@." Valid.Chaos.pp_outcome o)
    sweep.sw_failures;
  Printf.printf "chaos failures: %d (expected 0)\n"
    (List.length sweep.sw_failures + List.length sweep.sw_strict_failures)

(* ------------------------------------------------------------------ *)
(* Runtime: real execution on OCaml 5 domains — identity + wall clock *)

(* subscripted-subscript loop the compile-time tests can't prove: the
   parallelizer flags it speculative, so Parexec runs it under LRPD
   shadows.  [collide] plants one cross-iteration flow dependence, which
   forces the failure path (checkpoint, restore, serial re-run). *)
let runtime_spec_src ~collide = Printf.sprintf
  "      PROGRAM S\n\
   \      INTEGER N, K, COLL\n\
   \      PARAMETER (N = 64)\n\
   \      INTEGER IX(64), JX(64)\n\
   \      REAL D(128), SRC(128), T\n\
   \      COLL = %d\n\
   \      DO K = 1, N\n\
   \        IX(K) = 2 * K - MOD(K, 2)\n\
   \        JX(K) = IX(K)\n\
   \        SRC(K) = 0.5 * K\n\
   \      END DO\n\
   \      IF (COLL .EQ. 1) THEN\n\
   \        JX(7) = IX(6)\n\
   \      END IF\n\
   \      DO K = 1, N\n\
   \        T = D(JX(K)) + SRC(K)\n\
   \        D(IX(K)) = T * 0.5 + 1.0\n\
   \      END DO\n\
   \      PRINT *, D(1)\n\
   \      END\n"
  (if collide then 1 else 0)

let runtime ?(n = 3) () =
  section
    (Printf.sprintf
       "runtime: execute the 16-code suite for real on OCaml domains %dx at \
        p=1/2/4/8 — identity and wall clock" n);
  let cfg = Core.Config.polaris () in
  let procs_list = [ 1; 2; 4; 8 ] in
  let cmp = Valid.Oracle.real_cmp in
  let divergences = ref [] in
  let rows =
    List.map
      (fun (c : Suite.Code.t) ->
        let t = Core.Pipeline.compile cfg c.source in
        let reference = Valid.Oracle.execute t.program in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to n do
          ignore (Valid.Oracle.execute t.program)
        done;
        let serial_wall = (Unix.gettimeofday () -. t0) /. float_of_int n in
        let per_p =
          List.map
            (fun procs ->
              let run, stats = Valid.Oracle.execute_real ~procs t.program in
              let t0 = Unix.gettimeofday () in
              for _ = 1 to n do
                ignore (Valid.Oracle.execute_real ~procs t.program)
              done;
              let wall = (Unix.gettimeofday () -. t0) /. float_of_int n in
              let divs = Valid.Oracle.compare_outcomes cmp reference run in
              List.iter
                (fun d -> divergences := (c.name, procs, d) :: !divergences)
                divs;
              (procs, wall, stats))
            procs_list
        in
        (c.name, serial_wall, per_p))
      Suite.Registry.all
  in
  List.iter
    (fun (name, procs, d) ->
      Fmt.epr "runtime: DIVERGENCE on %s at p=%d: %a@." name procs
        Valid.Oracle.pp_divergence d)
    !divergences;
  let identical = !divergences = [] in
  Printf.printf "%-8s | %9s |" "code" "serial";
  List.iter (fun p -> Printf.printf " %7s %5s |" (Printf.sprintf "p=%d" p) "spdup")
    procs_list;
  print_newline ();
  Printf.printf "%s\n" (String.make (22 + (16 * List.length procs_list)) '-');
  List.iter
    (fun (name, serial_wall, per_p) ->
      Printf.printf "%-8s | %8.2fms |" name (serial_wall *. 1e3);
      List.iter
        (fun (_, wall, _) ->
          Printf.printf " %6.2fms %4.2fx |" (wall *. 1e3)
            (if wall <= 0.0 then 0.0 else serial_wall /. wall))
        per_p;
      print_newline ())
    rows;
  let total_serial =
    List.fold_left (fun a (_, s, _) -> a +. s) 0.0 rows
  in
  let total_at p =
    List.fold_left
      (fun a (_, _, per_p) ->
        let _, w, _ = List.find (fun (q, _, _) -> q = p) per_p in
        a +. w)
      0.0 rows
  in
  let regions_at p =
    List.fold_left
      (fun a (_, _, per_p) ->
        let _, _, (s : Machine.Parexec.stats) =
          List.find (fun (q, _, _) -> q = p) per_p
        in
        a + s.regions)
      0 rows
  in
  Printf.printf "\nsuite totals: serial %.1fms" (total_serial *. 1e3);
  List.iter
    (fun p ->
      let w = total_at p in
      Printf.printf "  p=%d %.1fms (%.2fx, %d regions)" p (w *. 1e3)
        (if w <= 0.0 then 0.0 else total_serial /. w)
        (regions_at p))
    procs_list;
  print_newline ();
  (* LRPD: both paths must actually execute — a committed speculative
     region and a failed one that restored from its checkpoint *)
  let spec_run ~collide =
    let p = Frontend.Parser.parse_string (runtime_spec_src ~collide) in
    ignore (Passes.Parallelize.run ~mode:Passes.Parallelize.Polaris p);
    let reference = Valid.Oracle.execute p in
    let run, stats = Valid.Oracle.execute_real ~procs:4 p in
    let divs = Valid.Oracle.compare_outcomes cmp reference run in
    List.iter
      (fun d ->
        Fmt.epr "runtime: LRPD(collide=%b) DIVERGENCE: %a@." collide
          Valid.Oracle.pp_divergence d)
      divs;
    (divs = [], stats)
  in
  let ok_pass, st_pass = spec_run ~collide:false in
  let ok_fail, st_fail = spec_run ~collide:true in
  let spec_committed = st_pass.Machine.Parexec.spec_success >= 1 in
  let spec_restored = st_fail.Machine.Parexec.spec_failures >= 1 in
  Printf.printf
    "LRPD success path: %d attempted, %d committed (identity %b)\n"
    st_pass.Machine.Parexec.spec_attempts st_pass.Machine.Parexec.spec_success
    ok_pass;
  Printf.printf
    "LRPD failure path: %d attempted, %d rolled back + re-run serially \
     (identity %b)\n"
    st_fail.Machine.Parexec.spec_attempts st_fail.Machine.Parexec.spec_failures
    ok_fail;
  let host_cores = Domain.recommended_domain_count () in
  Printf.printf "\nhost cores (recommended domain count): %d\n" host_cores;
  Printf.printf "parallel output/memory identical to serial at every p: %b\n"
    identical;
  let spec_ok = ok_pass && ok_fail && spec_committed && spec_restored in
  if not spec_committed then
    Printf.eprintf "runtime: LRPD success path never committed\n";
  if not spec_restored then
    Printf.eprintf "runtime: LRPD failure path never rolled back\n";
  let json =
    let open Valid.Trace.Json in
    obj
      [ ("iterations", int n);
        ("codes", int (List.length rows));
        ("host_cores", int host_cores);
        ( "runs",
          arr
            (List.map
               (fun (name, serial_wall, per_p) ->
                 obj
                   [ ("code", str name);
                     ("serial_wall_s", float serial_wall);
                     ( "parallel",
                       arr
                         (List.map
                            (fun (procs, wall, (s : Machine.Parexec.stats)) ->
                              obj
                                [ ("procs", int procs);
                                  ("wall_s", float wall);
                                  ( "speedup",
                                    float
                                      (if wall <= 0.0 then 0.0
                                       else serial_wall /. wall) );
                                  ("regions", int s.regions);
                                  ("par_iters", int s.par_iters) ])
                            per_p) ) ])
               rows) );
        ( "speculation",
          obj
            [ ("success_committed", bool spec_committed);
              ("failure_restored", bool spec_restored);
              ("success_identity", bool ok_pass);
              ("failure_identity", bool ok_fail) ] );
        ("identical_output", bool identical) ]
  in
  let oc = open_out "BENCH_runtime.json" in
  output_string oc json;
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_runtime.json\n";
  if not (identical && spec_ok) then exit 1

(* ------------------------------------------------------------------ *)
(* backends: the pipeline x backend emission matrix.  Every preset
   pipeline is compiled over the whole suite and emitted through every
   registered backend; re-parsing backends are semantically checked
   (their output, fed back through our own frontend, must print what
   the transformed program prints), non-reparsing backends are pinned
   by digest + emission determinism.  The native-toolchain leg of the
   C/OpenMP story lives in `polaris native` (gcc/gfortran hosts). *)

let backends_bench ?(n = 3) () =
  Printf.printf "== backends: pipeline x backend emission matrix ==\n\n";
  let failures = ref 0 in
  let rows =
    List.concat_map
      (fun (pl : Core.Registry.pipeline) ->
        let cfg = Core.Config.with_pipeline pl (Core.Config.polaris ()) in
        List.concat_map
          (fun (b : Backend.Registry.t) ->
            List.map
              (fun (c : Suite.Code.t) ->
                let t = Core.Pipeline.compile cfg c.source in
                let prog = t.Core.Pipeline.program in
                (* emission wall time: best of n *)
                let best = ref infinity and out = ref "" in
                for _ = 1 to n do
                  let t0 = Unix.gettimeofday () in
                  let s = b.b_emit prog in
                  let dt = Unix.gettimeofday () -. t0 in
                  if dt < !best then best := dt;
                  out := s
                done;
                let output = !out in
                let deterministic = String.equal output (b.b_emit prog) in
                let check =
                  if b.b_reparses then
                    (* semantic oracle: the emitted text, re-parsed by
                       our own frontend, prints what the transformed
                       program prints *)
                    match Frontend.Parser.parse_string output with
                    | exception e -> Error ("reparse: " ^ Printexc.to_string e)
                    | p2 ->
                      let want =
                        (Machine.Interp.run prog).Machine.Interp.output
                      in
                      let got =
                        (Machine.Interp.run p2).Machine.Interp.output
                      in
                      if want = got then Ok "reparse+oracle"
                      else Error "oracle divergence on re-parsed output"
                  else if deterministic then Ok "digest"
                  else Error "nondeterministic emission"
                in
                (match check with
                | Ok _ -> ()
                | Error m ->
                  incr failures;
                  Printf.eprintf "backends: %s x %s x %s: FAIL %s\n"
                    pl.pl_name b.b_name c.name m);
                ( pl.pl_name, b.b_name, c.name, String.length output,
                  Digest.to_hex (Digest.string output), !best, deterministic,
                  check ))
              Suite.Registry.all)
          Backend.Registry.all)
      Core.Registry.presets
  in
  Printf.printf "%-10s %-8s | %5s | %9s | %9s | %s\n" "pipeline" "backend"
    "codes" "bytes" "emit" "check";
  Printf.printf "%s\n" (String.make 64 '-');
  List.iter
    (fun (pl : Core.Registry.pipeline) ->
      List.iter
        (fun (b : Backend.Registry.t) ->
          let cell =
            List.filter
              (fun (p, bn, _, _, _, _, _, _) ->
                p = pl.pl_name && bn = b.b_name)
              rows
          in
          let bytes =
            List.fold_left (fun a (_, _, _, n, _, _, _, _) -> a + n) 0 cell
          in
          let emit_s =
            List.fold_left (fun a (_, _, _, _, _, s, _, _) -> a +. s) 0.0 cell
          in
          let ok =
            List.for_all
              (fun (_, _, _, _, _, _, _, ck) -> Result.is_ok ck)
              cell
          in
          let mode = if b.b_reparses then "reparse+oracle" else "digest" in
          Printf.printf "%-10s %-8s | %5d | %8dB | %7.2fms | %s %s\n"
            pl.pl_name b.b_name (List.length cell) bytes (emit_s *. 1e3) mode
            (if ok then "ok" else "FAIL"))
        Backend.Registry.all)
    Core.Registry.presets;
  let json =
    let open Valid.Trace.Json in
    obj
      [ ("iterations", int n);
        ( "pipelines",
          arr
            (List.map
               (fun (pl : Core.Registry.pipeline) -> str pl.pl_name)
               Core.Registry.presets) );
        ( "backends",
          arr (List.map (fun s -> str s) Backend.Registry.names) );
        ("failures", int !failures);
        ( "rows",
          arr
            (List.map
               (fun (p, b, c, bytes, digest, emit_s, det, ck) ->
                 obj
                   [ ("pipeline", str p);
                     ("backend", str b);
                     ("code", str c);
                     ("bytes", int bytes);
                     ("digest", str digest);
                     ("emit_s", float emit_s);
                     ("deterministic", bool det);
                     ( "check",
                       str (match ck with Ok m -> m | Error m -> m) );
                     ("ok", bool (Result.is_ok ck)) ])
               rows) ) ]
  in
  let oc = open_out "BENCH_backends.json" in
  output_string oc json;
  output_string oc "\n";
  close_out oc;
  Printf.printf "\nwrote BENCH_backends.json\n";
  if !failures > 0 then exit 1

let experiments =
  [ ("table1", table1); ("fig1", fig1); ("fig2", fig2); ("fig3", fig3);
    ("fig4", fig4); ("fig5", fig5); ("fig6", fig6); ("fig7", fig7);
    ("coverage", coverage); ("validate", validate); ("ablation", ablation);
    ("chaos", chaos); ("micro", micro); ("perf", fun () -> perf ());
    ("scale", fun () -> scale ());
    ("incremental", fun () -> incremental ());
    ("daemon", fun () -> daemon_bench ());
    ("storm", fun () -> storm ());
    ("chaosnet", fun () -> chaosnet ());
    ("runtime", fun () -> runtime ());
    ("backends", fun () -> backends_bench ()) ]

let () =
  match Sys.argv with
  | [| _ |] -> List.iter (fun (_, f) -> f ()) experiments
  | [| _; "perf"; n |] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> perf ~n ()
    | _ ->
      Printf.eprintf "usage: %s perf [iterations > 0]\n" Sys.argv.(0);
      exit 1)
  | [| _; "scale"; n |] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> scale ~n ()
    | _ ->
      Printf.eprintf "usage: %s scale [iterations > 0]\n" Sys.argv.(0);
      exit 1)
  | [| _; "runtime"; n |] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> runtime ~n ()
    | _ ->
      Printf.eprintf "usage: %s runtime [iterations > 0]\n" Sys.argv.(0);
      exit 1)
  | [| _; "daemon"; n |] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> daemon_bench ~sessions:n ()
    | _ ->
      Printf.eprintf "usage: %s daemon [sessions > 0]\n" Sys.argv.(0);
      exit 1)
  | [| _; "storm"; n |] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> storm ~clients:n ()
    | _ ->
      Printf.eprintf "usage: %s storm [clients > 0]\n" Sys.argv.(0);
      exit 1)
  | [| _; "backends"; n |] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> backends_bench ~n ()
    | _ ->
      Printf.eprintf "usage: %s backends [iterations > 0]\n" Sys.argv.(0);
      exit 1)
  | [| _; "chaosnet"; n |] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> chaosnet ~seeds:n ()
    | _ ->
      Printf.eprintf "usage: %s chaosnet [seeds > 0]\n" Sys.argv.(0);
      exit 1)
  | [| _; name |] -> (
    match List.assoc_opt name experiments with
    | Some f -> f ()
    | None ->
      Printf.eprintf "unknown experiment %s; available: %s\n" name
        (String.concat " " (List.map fst experiments));
      exit 1)
  | _ ->
    Printf.eprintf "usage: %s [experiment]\n" Sys.argv.(0);
    exit 1
