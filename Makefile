# Convenience wrapper around dune.  `make check` is the CI entry point:
# build, unit/property tests, then translation-validate the full
# evaluation suite by differential execution (bit-for-bit integers,
# 2-ULP floats, serial + p in {1,2,4,8}).

.PHONY: all build test validate check bench clean

all: build

build:
	dune build

test: build
	dune runtest

validate: build
	dune exec bin/polaris_cli.exe -- validate --suite

check: build
	dune runtest
	dune exec bin/polaris_cli.exe -- validate --suite

bench: build
	dune exec bench/main.exe -- all

clean:
	dune clean
