# Convenience wrapper around dune.  `make check` is the CI entry point:
# build, unit/property tests, translation-validate the full evaluation
# suite by differential execution (bit-for-bit integers, 2-ULP floats,
# serial + p in {1,2,4,8}), then a 120-seed chaos sweep: injected pass
# faults must be contained, attributed and oracle-equivalent.

.PHONY: all build test validate chaos check bench perf scale runtime incremental daemon storm chaosnet backends native clean

all: build

build:
	dune build

test: build
	dune runtest

validate: build
	dune exec bin/polaris_cli.exe -- validate --suite --trace trace-report.json

chaos: build
	dune exec bin/polaris_cli.exe -- chaos --seeds 120 --out chaos-report.json

check: build
	dune runtest
	dune exec bin/polaris_cli.exe -- validate --suite --trace trace-report.json
	dune exec bin/polaris_cli.exe -- chaos --seeds 120 --out chaos-report.json

bench: build
	dune exec bench/main.exe -- all

# Compile-time performance: compiles the 16-code suite N times with the
# caches off then on, prints per-phase wall time and the speedup, writes
# BENCH_compile.json, and exits non-zero if cached and uncached
# compilation outputs or verdicts diverge.
perf: build
	dune exec bench/main.exe -- perf 5

# Multicore compilation: compiles the 16-code suite N times at
# -j 1/2/4/8, asserts that output, verdicts and incidents are
# byte-identical at every job count, prints the wall-clock scaling
# table with per-pass wall time and the work-stealing scheduler's
# batch/chunk/steal counters, and writes BENCH_scale.json (committed).
scale: build
	dune exec bench/main.exe -- scale 3

# Real parallel execution: runs the 16-code suite on the serial
# interpreter and on 1/2/4/8 OCaml domains (Machine.Parexec), prints
# measured wall-clock speedups, exercises an LRPD success and a forced
# LRPD failure (checkpoint/rollback/serial re-run), writes
# BENCH_runtime.json, and exits non-zero if any parallel run diverges
# from serial (integers exact, floats within the documented real-lane
# tolerance) or either speculation path fails to execute.
runtime: build
	dune exec bench/main.exe -- runtime 3

# Incremental recompilation: one serve-style session — cold-compile the
# 16-code suite, then one single-unit edit per code with a full-suite
# incremental recompile each.  Writes BENCH_incremental.json and exits
# non-zero if any recompile diverges from a from-scratch compile or the
# analysis-reuse rate falls below the 70% floor.
incremental: build
	dune exec bench/main.exe -- incremental

# Compile daemon: replays 4 concurrent client sessions over the 16-code
# suite against a real daemon + unix socket, three times — cold (empty
# store), warm (daemon restarted on the persisted store) and conc (cold
# again under --max-inflight 4, cross-request concurrency vs the
# serialized cold baseline).  Writes BENCH_daemon.json and exits
# non-zero if any response differs from a from-scratch compile or the
# warm shared-cache hit rate is below 50%.
daemon: build
	dune exec bench/main.exe -- daemon 4

# Overload storm: 6 honest clients, 1 mid-frame staller and 1 seeded
# chaos transport against a daemon capped at 4 sessions.  Writes
# BENCH_storm.json and exits non-zero unless the daemon sheds (Busy),
# evicts the staller, keeps queued response bytes bounded, and answers
# every honest request byte-identically to a from-scratch compile.
storm: build
	dune exec bench/main.exe -- storm 6

# Network chaos: 100 seeded fault-injecting transports (bit flips,
# torn frames, mid-frame disconnects, stalls) against a live daemon.
# Writes BENCH_chaosnet.json and exits non-zero unless every retried
# client converges byte-identically and the daemon exits gracefully.
chaosnet: build
	dune exec bench/main.exe -- chaosnet 100

# Backend emission matrix: every preset pipeline (thorough/fast/serial)
# x every registered backend (f77/f77-omp/c) over the 16-code suite.
# Re-parsing backends are semantically checked through our own frontend
# against the interpreter oracle; the C backend is pinned by digest and
# emission determinism.  Writes BENCH_backends.json and exits non-zero
# on any divergence.
backends: build
	dune exec bench/main.exe -- backends

# Native toolchain check: compile the f77-omp output with gfortran
# -fopenmp and the C output with cc -fopenmp for three suite codes, run
# the executables, and numerically diff their stdout against the
# interpreter oracle.  Any toolchain the host lacks is skipped cleanly.
native: build
	dune exec bin/polaris_cli.exe -- native --codes swim,tomcatv,arc2d --backends f77-omp,c

clean:
	dune clean
